"""Name -> scheduler factory registry.

The benchmark harness and the network simulator refer to scheduling
disciplines by short names (``"srr"``, ``"drr"``, ``"wfq"``, ...); this
module resolves them. Extensions (RRR, G-3) register themselves on import
of :mod:`repro.extensions`, keeping the dependency direction clean
(core/schedulers never import extensions).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.errors import ConfigurationError
from ..core.interfaces import PacketScheduler
from ..core.srr import SRRScheduler
from .drr import DRRScheduler
from .fifo import FIFOScheduler
from .rr import RoundRobinScheduler
from .scfq import SCFQScheduler
from .stfq import STFQScheduler
from .strr import StratifiedRRScheduler
from .virtual_clock import VirtualClockScheduler
from .wf2q import WF2QPlusScheduler
from .wfq import WFQScheduler
from .wrr import WRRScheduler

__all__ = ["create_scheduler", "register_scheduler", "available_schedulers"]

SchedulerFactory = Callable[..., PacketScheduler]

_REGISTRY: Dict[str, SchedulerFactory] = {
    SRRScheduler.name: SRRScheduler,
    DRRScheduler.name: DRRScheduler,
    FIFOScheduler.name: FIFOScheduler,
    RoundRobinScheduler.name: RoundRobinScheduler,
    SCFQScheduler.name: SCFQScheduler,
    STFQScheduler.name: STFQScheduler,
    StratifiedRRScheduler.name: StratifiedRRScheduler,
    VirtualClockScheduler.name: VirtualClockScheduler,
    WF2QPlusScheduler.name: WF2QPlusScheduler,
    WFQScheduler.name: WFQScheduler,
    WRRScheduler.name: WRRScheduler,
}


def register_scheduler(name: str, factory: SchedulerFactory) -> None:
    """Register (or replace) a scheduler factory under ``name``."""
    if not name:
        raise ConfigurationError("scheduler name must be non-empty")
    _REGISTRY[name] = factory


def create_scheduler(name: str, **kwargs) -> PacketScheduler:
    """Instantiate a scheduler by registry name, passing ``kwargs`` through."""
    if name not in _REGISTRY:
        # The extension schedulers (rrr, g3) register on import of
        # repro.extensions; load them lazily so callers can name them
        # without importing the package themselves.
        import repro.extensions  # noqa: F401
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    return factory(**kwargs)


def available_schedulers() -> List[str]:
    """Sorted list of registered scheduler names."""
    return sorted(_REGISTRY)
