"""Baseline packet schedulers the paper compares against.

Round-robin family: :class:`~repro.schedulers.rr.RoundRobinScheduler`,
:class:`~repro.schedulers.wrr.WRRScheduler`,
:class:`~repro.schedulers.drr.DRRScheduler`.

Timestamp family: :class:`~repro.schedulers.wfq.WFQScheduler` (exact GPS
virtual time), :class:`~repro.schedulers.scfq.SCFQScheduler`,
:class:`~repro.schedulers.stfq.STFQScheduler`,
:class:`~repro.schedulers.wf2q.WF2QPlusScheduler`.

Degenerate: :class:`~repro.schedulers.fifo.FIFOScheduler`.
"""

from .drr import DRRScheduler
from .fifo import FIFOScheduler
from .registry import (
    available_schedulers,
    create_scheduler,
    register_scheduler,
    resolve_scheduler,
)
from .rr import RoundRobinScheduler
from .scfq import SCFQScheduler
from .stfq import STFQScheduler
from .strr import StratifiedRRScheduler
from .virtual_clock import VirtualClockScheduler
from .wf2q import WF2QPlusScheduler
from .wfq import WFQScheduler
from .wrr import WRRScheduler

__all__ = [
    "DRRScheduler",
    "FIFOScheduler",
    "RoundRobinScheduler",
    "SCFQScheduler",
    "STFQScheduler",
    "StratifiedRRScheduler",
    "VirtualClockScheduler",
    "WF2QPlusScheduler",
    "WFQScheduler",
    "WRRScheduler",
    "available_schedulers",
    "create_scheduler",
    "register_scheduler",
    "resolve_scheduler",
]
