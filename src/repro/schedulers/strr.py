"""Stratified Round Robin (Ramabhadran & Pasquale, SIGCOMM 2003).

One of the timestamp/round-robin hybrids the paper's introduction
discusses (together with GR³ and FRR): flows are *stratified* into rate
classes, a cheap deadline scheme arbitrates between classes, and round
robin with small per-flow slot credits runs inside each class.

Scheme (following the published design, at slot granularity):

* flow ``i`` with weight share ``s_i = w_i / Σw`` joins class
  ``F_k`` with ``k = ceil(-log2 s_i)`` — class ``k`` holds flows with
  share in ``(2^-k, 2^-(k-1)]``, so ``s_i * 2^k`` lies in ``(1, 2]``;
* a backlogged class is scheduled at the aggregate rate of its
  backlogged flows: after each class slot its deadline advances by
  ``Σw / (class backlogged weight)`` slot times, and the
  earliest-deadline backlogged class wins (a lazy heap over at most ~32
  classes — effectively O(1), the algorithm's selling point);
* inside the class, flows take turns: on gaining the head a flow is
  charged ``s_i * 2^k`` slot *credits* (in ``(1, 2]``), sends one packet
  per class slot while it has a full credit, and rotates when its credit
  falls below 1 (carrying the remainder — a packet-unit deficit counter,
  exactly the published rule). Per ring cycle a flow therefore sends
  ``∝ w_i`` packets, giving proportional fairness overall.

The published weakness — a low-rate flow's single-packet latency is
proportional to ``2^k``, i.e. inversely proportional to its rate — and
the O(1)-ish class count are what make STRR an instructive comparator
for SRR in E4/E5.

Fixed-size packet model (the paper's and this repository's E-series
setting); for variable sizes the credits would count bytes, as in DRR.
"""

from __future__ import annotations

import math
from typing import ClassVar, Deque, Dict, Hashable, Optional

from collections import deque

from ..core.errors import InvalidWeightError
from ..core.flow import FlowState
from ..core.interfaces import FlowTableScheduler
from ..core.packet import Packet
from ._heap import CountingHeap

__all__ = ["StratifiedRRScheduler"]

#: Deepest rate class supported (shares below 2^-32 are clamped).
_MAX_CLASS = 32


class _RateClass:
    """One stratum: a round-robin ring of backlogged flows + a deadline."""

    __slots__ = ("k", "flows", "members", "weight_sum", "deadline", "stamp",
                 "head_charged")

    def __init__(self, k: int) -> None:
        self.k = k
        self.flows: Deque[FlowState] = deque()
        self.members: set = set()
        self.weight_sum = 0.0  # backlogged weight in this class
        self.deadline = 0.0
        self.stamp = 0  # lazily invalidates stale heap entries
        self.head_charged = False


class StratifiedRRScheduler(FlowTableScheduler):
    """Stratified Round Robin: rate classes + deadlines + intra-class RR."""

    name: ClassVar[str] = "strr"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._classes: Dict[int, _RateClass] = {}
        # Heap of (deadline, stamp, k, class); entries validated lazily.
        self._deadlines = CountingHeap(op_counter=self._ops)
        self._total_weight = 0.0
        self._slot_clock = 0.0
        # flow_id -> stratum while the flow is backlogged. Stratification
        # is (re)computed each time a flow becomes backlogged, against the
        # current total weight — the published scheme stratifies against
        # the known link capacity; re-stratifying at backlog transitions
        # tracks membership churn, and proportional fairness holds
        # regardless of stratification accuracy (only latency depends on
        # it).
        self._class_of: Dict[Hashable, int] = {}

    # -- flow management ---------------------------------------------------

    def _on_flow_added(self, flow: FlowState) -> None:
        if flow.weight <= 0:
            raise InvalidWeightError("STRR weights must be positive")
        self._total_weight += flow.weight

    def _stratum(self, weight: float) -> int:
        share = weight / self._total_weight
        k = int(math.ceil(-math.log2(share))) if share < 1.0 else 0
        return min(max(k, 0), _MAX_CLASS)

    def _on_flow_removed(self, flow: FlowState) -> None:
        self._total_weight -= flow.weight
        k = self._class_of.pop(flow.flow_id, None)
        if k is not None:
            cls = self._classes.get(k)
            if cls is not None and flow.flow_id in cls.members:
                if cls.flows and cls.flows[0] is flow:
                    cls.head_charged = False
                cls.flows.remove(flow)
                cls.members.discard(flow.flow_id)
                cls.weight_sum -= flow.weight
        flow.deficit = 0

    def _on_backlogged(self, flow: FlowState) -> None:
        k = self._class_of.get(flow.flow_id)
        if k is None:
            k = self._class_of[flow.flow_id] = self._stratum(flow.weight)
        cls = self._classes.get(k)
        if cls is None:
            cls = self._classes[k] = _RateClass(k)
        if flow.flow_id in cls.members:
            return
        if not cls.flows:
            # Class wakes up: schedule it from now.
            cls.deadline = self._slot_clock
            cls.stamp += 1
            self._deadlines.push((cls.deadline, cls.stamp, cls.k, cls))
        cls.flows.append(flow)
        cls.members.add(flow.flow_id)
        cls.weight_sum += flow.weight

    # -- scheduling --------------------------------------------------------

    def dequeue(self) -> Optional[Packet]:
        deadlines = self._deadlines
        while deadlines:
            _dl, stamp, _k, cls = deadlines.pop()
            if stamp != cls.stamp or not cls.flows:
                continue  # stale entry
            packet = self._serve_class_slot(cls)
            self._slot_clock += 1.0
            if cls.flows:
                # The class's aggregate rate is its backlogged weight
                # share: one slot every Σw / weight_sum slot times.
                cls.deadline += self._total_weight / cls.weight_sum
                if cls.deadline < self._slot_clock:
                    cls.deadline = self._slot_clock
                cls.stamp += 1
                deadlines.push((cls.deadline, cls.stamp, cls.k, cls))
            else:
                cls.stamp += 1  # class drained; invalidate
            if packet is not None:
                return self._account_departure(packet)
        return None

    def _serve_class_slot(self, cls: _RateClass) -> Optional[Packet]:
        """One class slot: serve the head flow under its slot credit."""
        self._ops.bump()  # ring-head access, same unit as SRR's node step
        flow = cls.flows[0]
        if not cls.head_charged:
            # Charged once per headship: share * 2^k in (1, 2] credits.
            flow.deficit += flow.weight * (1 << cls.k) / self._total_weight
            cls.head_charged = True
        packet = None
        if flow.deficit >= 1.0 and flow.queue:
            packet = flow.take()
            flow.deficit -= 1.0
        if not flow.queue:
            flow.deficit = 0
            cls.flows.popleft()
            cls.members.discard(flow.flow_id)
            cls.weight_sum -= flow.weight
            cls.head_charged = False
            # Drop the stratum assignment: the flow re-stratifies against
            # the membership in force when it next becomes backlogged.
            self._class_of.pop(flow.flow_id, None)
        elif flow.deficit < 1.0:
            cls.flows.rotate(-1)
            cls.head_charged = False
        # else: keep headship; the next class slot sends its 2nd packet.
        return packet

    # -- introspection -----------------------------------------------------

    def class_populations(self) -> Dict[int, int]:
        """Backlogged flows per stratum (diagnostics)."""
        return {
            k: len(cls.flows) for k, cls in self._classes.items() if cls.flows
        }
