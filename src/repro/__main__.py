"""``python -m repro`` — orientation entry point.

Prints the package version, the available schedulers, and how to run the
experiments and examples. The actual experiment CLI is
``python -m repro.bench``.
"""

import sys

from . import __version__
from .bench.runner import EXPERIMENTS, _DESCRIPTIONS
from .schedulers import available_schedulers


def main() -> int:
    print(f"repro {__version__} — reproduction of SRR (Guo, SIGCOMM 2001)")
    print()
    print("schedulers:", " ".join(available_schedulers()))
    print()
    print("experiments (python -m repro.bench <id> "
          "[--scale quick|default|full] [--jobs N] [--seed S] [--json]):")
    for name in sorted(EXPERIMENTS, key=lambda n: int(n[1:])):
        print(f"  {name:4s} {_DESCRIPTIONS[name]}")
    print()
    print("observability: python -m repro.obs report results/<exp>/*.json")
    print("(metrics in artifacts; --trace PATH on repro.bench for "
          "packet-lifecycle JSONL)")
    print()
    print("performance: python -m repro.perf [--quick] "
          "[--baseline BENCH_runtime.json]")
    print("(event-loop/scheduler/end-to-end benches; --engine "
          "heap|calendar on repro.bench)")
    print()
    print("examples: see examples/*.py; docs: README.md, DESIGN.md,")
    print("EXPERIMENTS.md, docs/algorithms.md, docs/simulator.md,")
    print("docs/observability.md, docs/performance.md, docs/api.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
