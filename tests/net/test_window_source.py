"""Tests for the closed-loop WindowSource and sink listeners."""

import pytest

from repro.core import ConfigurationError, Packet
from repro.net import (
    BurstSource,
    CBRSource,
    Network,
    SinkRegistry,
    Simulator,
    WindowSource,
)


def two_hop(scheduler="srr"):
    net = Network(default_scheduler=scheduler)
    for n in ("h", "r", "d"):
        net.add_node(n)
    net.add_link("h", "r", rate_bps=10e6, delay=0.001)
    net.add_link("r", "d", rate_bps=1e6, delay=0.001)
    return net


class TestSinkListeners:
    def test_listener_called_per_delivery(self):
        sim = Simulator()
        sinks = SinkRegistry(sim)
        seen = []
        sinks.add_listener(seen.append)
        p = Packet("f", 100)
        sinks.record(p)
        assert seen == [p]
        assert p.delivered_at == sim.now


class TestWindowSource:
    def test_keeps_window_in_flight(self):
        net = two_hop()
        net.add_flow("tcpish", "h", "d", weight=1)
        src = net.attach_source("tcpish", WindowSource(window=8, packet_size=500))
        net.run(until=2.0)
        rec = net.sinks.flow("tcpish")
        # Self-clocked: rate settles near the bottleneck rate.
        assert rec.throughput_bps(0.5, 2.0) == pytest.approx(1e6, rel=0.1)
        # In-flight never exceeds the window.
        assert src.packets_emitted - rec.packets <= 8

    def test_total_cap_stops_emission(self):
        net = two_hop()
        net.add_flow("f", "h", "d", weight=1)
        src = net.attach_source(
            "f", WindowSource(window=4, packet_size=500, total=10)
        )
        net.run(until=5.0)
        assert src.packets_emitted == 10
        assert net.sinks.flow("f").packets == 10

    def test_adapts_to_reserved_competition(self):
        """The elastic flow takes the residue; the reserved CBR flow is
        untouched — scheduler isolation against greedy adaptive traffic."""
        net = two_hop()
        net.add_flow("reserved", "h", "d", weight=3)
        net.add_flow("elastic", "h", "d", weight=1)
        net.attach_source("reserved", CBRSource(600_000, packet_size=500))
        net.attach_source("elastic", WindowSource(window=32, packet_size=500))
        net.run(until=3.0)
        reserved = net.sinks.flow("reserved").throughput_bps(1.0, 3.0)
        elastic = net.sinks.flow("elastic").throughput_bps(1.0, 3.0)
        assert reserved == pytest.approx(600_000, rel=0.1)
        assert elastic == pytest.approx(400_000, rel=0.15)

    def test_two_elastic_flows_share_by_weight(self):
        net = two_hop()
        net.add_flow("a", "h", "d", weight=3)
        net.add_flow("b", "h", "d", weight=1)
        net.attach_source("a", WindowSource(window=32, packet_size=500))
        net.attach_source("b", WindowSource(window=32, packet_size=500))
        net.run(until=3.0)
        a = net.sinks.flow("a").throughput_bps(1.0, 3.0)
        b = net.sinks.flow("b").throughput_bps(1.0, 3.0)
        assert a / b == pytest.approx(3.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowSource(window=0)
        with pytest.raises(ConfigurationError):
            WindowSource(packet_size=0)
        with pytest.raises(ConfigurationError):
            WindowSource(ack_delay=-1)

    def test_mixed_with_open_loop(self):
        net = two_hop()
        net.add_flow("burst", "h", "d", weight=1)
        net.add_flow("window", "h", "d", weight=1)
        net.attach_source("burst", BurstSource(100, packet_size=500))
        net.attach_source("window", WindowSource(window=8, packet_size=500))
        net.run(until=2.0)
        assert net.sinks.flow("burst").packets == 100
        assert net.sinks.flow("window").packets > 50
