"""Tests for static shortest-path routing."""

import pytest

from repro.core import ConfigurationError
from repro.net import compute_next_hops, shortest_path


def line():
    # a - b - c - d
    return {
        "a": [("b", 1)],
        "b": [("a", 1), ("c", 1)],
        "c": [("b", 1), ("d", 1)],
        "d": [("c", 1)],
    }


def diamond():
    #   a
    #  / \
    # b   c
    #  \ /
    #   d        with a-b cheap, a-c expensive
    return {
        "a": [("b", 1), ("c", 5)],
        "b": [("a", 1), ("d", 1)],
        "c": [("a", 5), ("d", 1)],
        "d": [("b", 1), ("c", 1)],
    }


class TestShortestPath:
    def test_line_path(self):
        assert shortest_path(line(), "a", "d") == ["a", "b", "c", "d"]

    def test_trivial_path(self):
        assert shortest_path(line(), "b", "b") == ["b"]

    def test_costs_respected(self):
        assert shortest_path(diamond(), "a", "d") == ["a", "b", "d"]

    def test_unreachable(self):
        adj = {"a": [], "b": []}
        with pytest.raises(ConfigurationError):
            shortest_path(adj, "a", "b")

    def test_unknown_source(self):
        with pytest.raises(ConfigurationError):
            shortest_path(line(), "zz", "a")

    def test_negative_cost_rejected(self):
        adj = {"a": [("b", -1)], "b": []}
        with pytest.raises(ConfigurationError):
            shortest_path(adj, "a", "b")


class TestNextHops:
    def test_line_tables(self):
        tables = compute_next_hops(line())
        assert tables["a"]["d"] == "b"
        assert tables["a"]["b"] == "b"
        assert tables["b"]["d"] == "c"
        assert tables["d"]["a"] == "c"
        assert "a" not in tables["a"]

    def test_costs_respected(self):
        tables = compute_next_hops(diamond())
        assert tables["a"]["d"] == "b"

    def test_deterministic_tie_break(self):
        # Two equal-cost paths a->b1->d and a->b2->d.
        adj = {
            "a": [("b2", 1), ("b1", 1)],
            "b1": [("a", 1), ("d", 1)],
            "b2": [("a", 1), ("d", 1)],
            "d": [("b1", 1), ("b2", 1)],
        }
        hops = [compute_next_hops(adj)["a"]["d"] for _ in range(5)]
        assert len(set(hops)) == 1  # stable across invocations

    def test_disconnected_component_omitted(self):
        adj = {"a": [("b", 1)], "b": [("a", 1)], "island": []}
        tables = compute_next_hops(adj)
        assert "island" not in tables["a"]
        assert tables["island"] == {}
