"""Tests for links, ports and nodes (the store-and-forward datapath)."""

import pytest

from repro.core import CapacityError, Packet, SimulationError
from repro.core.srr import SRRScheduler
from repro.net import Link, Node, OutputPort, ServiceTrace, Simulator


class TestLink:
    def test_serialization_time(self):
        link = Link(rate_bps=10e6, delay=0.01)
        # 200 bytes at 10 Mb/s = 160 us.
        assert link.serialization_time(200) == pytest.approx(160e-6)

    def test_validation(self):
        with pytest.raises(CapacityError):
            Link(rate_bps=0)
        with pytest.raises(CapacityError):
            Link(rate_bps=1e6, delay=-1)


def make_port(sim, rate=1e6, delay=0.0, sched=None):
    receiver = Node("dst")
    got = []
    receiver.set_delivery_handler(got.append)
    sched = sched or SRRScheduler()
    sched.add_flow("f", 1)
    port = OutputPort(sim, Link(rate, delay), sched, receiver, name="test")
    return port, got


class TestOutputPort:
    def test_transmits_with_serialization_delay(self):
        sim = Simulator()
        port, got = make_port(sim, rate=8000)  # 1000 bytes/s
        port.enqueue(Packet("f", 100, dst="dst"))
        sim.run()
        assert len(got) == 1
        # 100 bytes at 1000 B/s -> delivered at t = 0.1.
        assert sim.now == pytest.approx(0.1)

    def test_propagation_delay_added(self):
        sim = Simulator()
        port, got = make_port(sim, rate=8000, delay=0.5)
        port.enqueue(Packet("f", 100, dst="dst"))
        sim.run()
        assert sim.now == pytest.approx(0.6)

    def test_back_to_back_pipeline(self):
        sim = Simulator()
        port, got = make_port(sim, rate=8000)
        for i in range(3):
            port.enqueue(Packet("f", 100, seq=i, dst="dst"))
        sim.run()
        assert [p.seq for p in got] == [0, 1, 2]
        # Three serialisations back to back.
        assert sim.now == pytest.approx(0.3)

    def test_busy_flag_lifecycle(self):
        sim = Simulator()
        port, _got = make_port(sim, rate=8000)
        assert not port.busy
        port.enqueue(Packet("f", 100, dst="dst"))
        assert port.busy
        sim.run()
        assert not port.busy

    def test_counters_and_drops(self):
        sim = Simulator()
        sched = SRRScheduler()
        sched.add_flow("f", 1, max_queue=2)
        receiver = Node("dst")
        port = OutputPort(sim, Link(8000), sched, receiver)
        # 3rd packet overflows the per-flow queue... but transmission of
        # the first begins immediately, freeing a slot; hold the clock by
        # enqueueing before running.
        for i in range(4):
            port.enqueue(Packet("f", 100, seq=i, dst="dst"))
        assert port.packets_in == 4
        assert port.drops == 1  # one packet in flight + 2 queued + 1 drop
        sim.run()
        assert port.packets_out == 3
        assert port.bytes_out == 300

    def test_transmit_hooks_fire_at_completion(self):
        sim = Simulator()
        port, _got = make_port(sim, rate=8000)
        trace = ServiceTrace(port)
        port.enqueue(Packet("f", 100, dst="dst"))
        sim.run()
        assert len(trace) == 1
        t, fid, size = trace.entries[0]
        assert t == pytest.approx(0.1)
        assert fid == "f" and size == 100


class TestSharedBuffer:
    def test_drop_tail_across_flows(self):
        sim = Simulator()
        sched = SRRScheduler()
        sched.add_flow("a", 1)
        sched.add_flow("b", 1)
        receiver = Node("dst")
        port = OutputPort(sim, Link(8000), sched, receiver,
                          buffer_packets=3)
        accepted = 0
        for i in range(6):
            fid = "a" if i % 2 == 0 else "b"
            if port.enqueue(Packet(fid, 100, seq=i, dst="dst")):
                accepted += 1
        # One in flight + 3 buffered; the rest dropped regardless of flow.
        assert accepted == 4
        assert port.drops == 2
        sim.run()
        assert port.packets_out == 4

    def test_unbounded_by_default(self):
        sim = Simulator()
        sched = SRRScheduler()
        sched.add_flow("a", 1)
        port = OutputPort(sim, Link(8000), sched, Node("dst"))
        for i in range(100):
            assert port.enqueue(Packet("a", 100, seq=i, dst="dst"))
        assert port.drops == 0


class TestNode:
    def test_delivers_local_packets(self):
        node = Node("x")
        got = []
        node.set_delivery_handler(got.append)
        p = Packet("f", 100, dst="x")
        node.receive(p)
        assert got == [p]
        assert node.packets_delivered == 1

    def test_forwards_via_route(self):
        sim = Simulator()
        a, b = Node("a"), Node("b")
        got = []
        b.set_delivery_handler(got.append)
        sched = SRRScheduler()
        sched.add_flow("f", 1)
        a.ports["b"] = OutputPort(sim, Link(8000), sched, b)
        a.routes["b"] = "b"
        a.receive(Packet("f", 100, dst="b"))
        sim.run()
        assert len(got) == 1
        assert a.packets_forwarded == 1

    def test_missing_route_raises(self):
        node = Node("a")
        with pytest.raises(SimulationError):
            node.receive(Packet("f", 100, dst="elsewhere"))

    def test_missing_port_raises(self):
        node = Node("a")
        node.routes["b"] = "b"
        with pytest.raises(SimulationError):
            node.receive(Packet("f", 100, dst="b"))
