"""Tests for measurement probes: ServiceTrace windows, HopTrace, and the
self-terminating periodic samplers (stop()/horizon)."""

import pytest

from repro.net import (
    BacklogMonitor,
    CBRSource,
    HopTrace,
    Network,
    ServiceTrace,
    ThroughputMonitor,
)


def two_hop_net():
    net = Network(default_scheduler="srr")
    for n in ("h", "r", "d"):
        net.add_node(n)
    net.add_link("h", "r", rate_bps=10e6, delay=0.001)
    net.add_link("r", "d", rate_bps=1e6, delay=0.001)
    return net


def run_cbr(net, stop_at=0.5, until=2.0, rate_bps=80_000):
    net.add_flow("f1", "h", "d", weight=1)
    net.attach_source(
        "f1", CBRSource(rate_bps=rate_bps, packet_size=200, stop_at=stop_at)
    )
    net.run(until=until)


class TestServiceTraceWindows:
    def test_incremental_index_matches_brute_force(self):
        net = two_hop_net()
        trace = ServiceTrace(net.port("r", "d"))
        run_cbr(net)
        assert len(trace) > 10
        # The incremental timestamp index must agree with a full scan
        # for arbitrary windows, including empty and open-ended ones.
        t_end = trace.entries[-1][0]
        for t0, t1 in [(0.0, t_end), (0.1, 0.3), (0.2, 0.2), (t_end, 99.0)]:
            brute = sum(
                size for t, fid, size in trace.entries
                if fid == "f1" and t0 <= t < t1
            )
            assert trace.service_in_window("f1", t0, t1) == brute

    def test_times_stay_aligned_with_entries(self):
        net = two_hop_net()
        trace = ServiceTrace(net.port("r", "d"))
        run_cbr(net)
        assert trace._times == [t for t, _f, _s in trace.entries]
        assert trace._times == sorted(trace._times)

    def test_flows_and_slot_sequence(self):
        net = two_hop_net()
        trace = ServiceTrace(net.port("r", "d"))
        run_cbr(net)
        assert trace.flows() == ["f1"]
        assert len(trace.slot_sequence()) == len(trace)

    def test_service_curve_cumulative(self):
        net = two_hop_net()
        trace = ServiceTrace(net.port("r", "d"))
        run_cbr(net)
        curve = trace.service_curve("f1")
        totals = [b for _t, b in curve]
        assert totals == sorted(totals)
        assert totals[-1] == sum(s for _t, f, s in trace.entries if f == "f1")


class TestHopTrace:
    def test_per_hop_decomposition(self):
        net = two_hop_net()
        net.add_flow("f1", "h", "d", weight=1)
        hops = HopTrace(net.flows["f1"].ports, "f1")
        net.attach_source(
            "f1", CBRSource(rate_bps=80_000, packet_size=200, stop_at=0.3)
        )
        net.run(until=2.0)
        rows = hops.per_hop_delays()
        assert rows, "completed packets must be decomposed"
        for row in rows:
            assert len(row) == 2
            assert all(d > 0 for d in row)
            # Hop 2 crosses the 1 Mb/s bottleneck: serialisation alone
            # is 1.6 ms, strictly more than hop 1's on the 10 Mb/s line.
            assert row[1] > 200 * 8 / 10e6
        worst = hops.worst_per_hop()
        assert worst == [max(r[k] for r in rows) for k in (0, 1)]

    def test_in_flight_packets_skipped(self):
        net = two_hop_net()
        net.add_flow("f1", "h", "d", weight=1)
        hops = HopTrace(net.flows["f1"].ports, "f1")
        net.attach_source(
            "f1", CBRSource(rate_bps=80_000, packet_size=200, stop_at=0.5)
        )
        # Stop mid-flight: the first hop has transmitted packets the
        # second has not, which must not crash or produce partial rows.
        net.run(until=0.021)
        partial = [
            times for times in hops._times.values()
            if any(t is None for t in times)
        ]
        assert partial, "test needs at least one packet still in flight"
        for row in hops.per_hop_delays():
            assert all(t is not None for t in row)

    def test_ignores_other_flows(self):
        net = two_hop_net()
        net.add_flow("f1", "h", "d", weight=1)
        net.add_flow("f2", "h", "d", weight=1)
        hops = HopTrace(net.flows["f1"].ports, "f1")
        for fid in ("f1", "f2"):
            net.attach_source(
                fid, CBRSource(rate_bps=40_000, packet_size=200, stop_at=0.2)
            )
        net.run(until=2.0)
        rows = hops.per_hop_delays()
        # Only f1's packets are traced, and f1's deliveries all complete.
        assert len(rows) == net.sinks.flows["f1"].packets

    def test_empty_trace_worst_is_zeros(self):
        net = two_hop_net()
        net.add_flow("f1", "h", "d", weight=1)
        hops = HopTrace(net.flows["f1"].ports, "f1")
        assert hops.worst_per_hop() == [0.0, 0.0]


class TestSamplerTermination:
    def test_interval_validated(self):
        net = two_hop_net()
        with pytest.raises(ValueError):
            BacklogMonitor(net.sim, net.port("r", "d"), interval=0.0)

    def test_open_ended_run_terminates_with_horizon(self):
        net = two_hop_net()
        mon = BacklogMonitor(
            net.sim, net.port("r", "d"), interval=0.01, horizon=1.0
        )
        tput = ThroughputMonitor(
            net.sim, net.sinks, interval=0.1, horizon=1.0
        )
        net.add_flow("f1", "h", "d", weight=1)
        net.attach_source(
            "f1", CBRSource(rate_bps=80_000, packet_size=200, stop_at=0.5)
        )
        net.compute_routes()
        # No until=: this only returns because the samplers stop
        # rescheduling past their horizon once the source goes quiet.
        net.sim.run()
        assert mon.samples and mon.samples[-1][0] <= 1.0
        assert tput.series["f1"][-1][0] <= 1.0
        assert net.sinks.flows["f1"].packets > 0

    def test_stop_cancels_pending_tick(self):
        net = two_hop_net()
        mon = BacklogMonitor(net.sim, net.port("r", "d"), interval=0.01)
        net.compute_routes()
        net.sim.run(until=0.05)
        count = len(mon.samples)
        assert count >= 5
        mon.stop()
        assert mon.stopped
        mon.stop()  # idempotent
        net.sim.run(until=1.0)
        assert len(mon.samples) == count

    def test_stopped_before_first_tick_never_samples(self):
        net = two_hop_net()
        mon = BacklogMonitor(net.sim, net.port("r", "d"), interval=0.01)
        mon.stop()
        net.compute_routes()
        net.sim.run(until=0.1)
        assert mon.samples == []

    def test_horizon_inclusive_edge(self):
        net = two_hop_net()
        mon = BacklogMonitor(
            net.sim, net.port("r", "d"), interval=0.25, horizon=0.5
        )
        net.compute_routes()
        net.sim.run(until=2.0)
        # Ticks at 0, 0.25, 0.5 fire; the next (0.75) exceeds the horizon.
        assert [t for t, _b in mon.samples] == pytest.approx(
            [0.0, 0.25, 0.5]
        )

    def test_throughput_monitor_series(self):
        net = two_hop_net()
        tput = ThroughputMonitor(
            net.sim, net.sinks, interval=0.1, horizon=1.0
        )
        run_cbr(net, stop_at=0.45, until=2.0)
        rates = tput.rates("f1")
        assert rates, "delivered traffic must appear in the series"
        # CBR at 80 kb/s: full windows should measure about that.
        assert max(rates) == pytest.approx(80_000, rel=0.25)
        assert tput.rates("ghost") == []
