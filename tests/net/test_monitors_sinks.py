"""Tests for measurement probes (monitors) and delivery records (sinks)."""

import pytest

from repro.core import Packet
from repro.net import (
    BacklogMonitor,
    BurstSource,
    CBRSource,
    DeliveryRecord,
    FlowRecord,
    Network,
    ServiceTrace,
    SinkRegistry,
    Simulator,
    ThroughputMonitor,
)


def bottleneck_net():
    net = Network(default_scheduler="srr")
    for n in ("h", "r", "d"):
        net.add_node(n)
    net.add_link("h", "r", rate_bps=10e6, delay=0.001)
    net.add_link("r", "d", rate_bps=1e6, delay=0.001)
    return net


class TestDeliveryRecord:
    def test_delay_property(self):
        rec = DeliveryRecord("f", 0, 100, created_at=1.0, delivered_at=1.25)
        assert rec.delay == pytest.approx(0.25)


class TestFlowRecord:
    def test_accumulates(self):
        fr = FlowRecord("f")
        fr.add(DeliveryRecord("f", 0, 100, 0.0, 0.5))
        fr.add(DeliveryRecord("f", 1, 200, 0.1, 1.0))
        assert fr.packets == 2
        assert fr.bytes == 300
        assert fr.delays() == [0.5, 0.9]
        assert fr.first_at == 0.5
        assert fr.last_at == 1.0

    def test_throughput_window(self):
        fr = FlowRecord("f")
        for i in range(10):
            fr.add(DeliveryRecord("f", i, 125, 0.0, 0.1 * (i + 1)))
        # 10 * 125 B over 1 s = 10 kb/s.
        assert fr.throughput_bps(0.0, 1.0) == pytest.approx(10_000)
        # Half the window -> half the packets, same rate.
        assert fr.throughput_bps(0.0, 0.5) == pytest.approx(10_000)

    def test_empty_window(self):
        fr = FlowRecord("f")
        assert fr.throughput_bps(0.0, 1.0) == 0.0


class TestSinkRegistry:
    def test_record_and_lookup(self):
        sim = Simulator()
        sinks = SinkRegistry(sim)
        sinks.record(Packet("a", 100, created_at=0.0))
        sinks.record(Packet("a", 100, created_at=0.0, seq=1))
        sinks.record(Packet("b", 50, created_at=0.0))
        assert sinks.total_packets == 3
        assert sinks.total_bytes == 250
        assert sinks.flow("a").packets == 2
        assert sinks.delays("never-seen") == []


class TestServiceTrace:
    def test_service_curve_and_window(self):
        net = bottleneck_net()
        net.add_flow("a", "h", "d", weight=1)
        net.add_flow("b", "h", "d", weight=1)
        trace = ServiceTrace(net.port("r", "d"))
        net.attach_source("a", BurstSource(10, packet_size=500))
        net.attach_source("b", BurstSource(10, packet_size=500))
        net.run(until=1.0)
        assert len(trace) == 20
        assert set(trace.flows()) == {"a", "b"}
        curve = trace.service_curve("a")
        assert curve[-1][1] == 5000  # cumulative bytes
        times = [t for t, _s in curve]
        assert times == sorted(times)
        # Window covering everything equals the total.
        assert trace.service_in_window("a", 0.0, 2.0) == 5000
        # Complementary windows partition the total.
        mid = curve[2][0]
        first = trace.service_in_window("a", 0.0, mid)
        rest = trace.service_in_window("a", mid, 2.0)
        assert first + rest == 5000

    def test_slot_sequence(self):
        net = bottleneck_net()
        net.add_flow("a", "h", "d", weight=1)
        trace = ServiceTrace(net.port("r", "d"))
        net.attach_source("a", BurstSource(3, packet_size=500))
        net.run(until=1.0)
        assert trace.slot_sequence() == ["a", "a", "a"]


class TestBacklogMonitor:
    def test_samples_queue_growth(self):
        net = bottleneck_net()
        net.add_flow("a", "h", "d", weight=1, max_queue=1000)
        monitor = BacklogMonitor(net.sim, net.port("r", "d"), interval=0.01)
        # 2 Mb/s into a 1 Mb/s link: backlog grows.
        net.attach_source("a", CBRSource(2e6, packet_size=500))
        net.run(until=0.5)
        assert monitor.max_backlog > 50
        assert 0 < monitor.mean_backlog <= monitor.max_backlog
        # Samples are (time, int) pairs in time order.
        times = [t for t, _b in monitor.samples]
        assert times == sorted(times)


class TestThroughputMonitor:
    def test_per_interval_rates(self):
        net = bottleneck_net()
        net.add_flow("a", "h", "d", weight=1)
        monitor = ThroughputMonitor(net.sim, net.sinks, interval=0.1)
        net.attach_source("a", CBRSource(400_000, packet_size=500))
        net.run(until=2.0)
        rates = monitor.rates("a")
        assert len(rates) >= 15
        # Steady state: each window carries ~400 kb/s.
        steady = rates[5:]
        assert sum(steady) / len(steady) == pytest.approx(400_000, rel=0.1)

    def test_unknown_flow_empty(self):
        net = bottleneck_net()
        monitor = ThroughputMonitor(net.sim, net.sinks)
        assert monitor.rates("ghost") == []
