"""Tests for the discrete-event engine."""

import pytest

from repro.core import SimulationError
from repro.net import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(3.0, out.append, "c")
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        sim.run()
        assert out == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        out = []
        for tag in "abcde":
            sim.schedule(1.0, out.append, tag)
        sim.run()
        assert out == list("abcde")

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.schedule(1.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5, 1.25]

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []

        def tick(n):
            out.append((sim.now, n))
            if n < 3:
                sim.schedule(1.0, tick, n + 1)

        sim.schedule(0.0, tick, 0)
        sim.run()
        assert out == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        out = []
        sim.schedule_at(5.0, out.append, "x")
        sim.run()
        assert sim.now == 5.0
        assert out == ["x"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


class TestRunControl:
    def test_run_until_stops_and_sets_clock(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(3.0, out.append, "b")
        n = sim.run(until=2.0)
        assert n == 1
        assert out == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert out == ["a", "b"]

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.schedule(float(i), out.append, i)
        sim.run(max_events=4)
        assert out == [0, 1, 2, 3]

    def test_cancellation(self):
        sim = Simulator()
        out = []
        keep = sim.schedule(1.0, out.append, "keep")
        drop = sim.schedule(2.0, out.append, "drop")
        drop.cancel()
        sim.run()
        assert out == ["keep"]
        assert not keep.cancelled

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_reentrancy_guard(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()


class TestObservability:
    def test_cancelled_events_are_reaped_not_fired(self):
        sim = Simulator()
        out = []
        events = [sim.schedule(float(i), out.append, i) for i in range(6)]
        for event in events[::2]:
            event.cancel()
        sim.run()
        assert out == [1, 3, 5]
        assert sim.cancelled_reaped == 3
        assert sim.events_processed == 3
        assert sim.pending_events == 0

    def test_cancelled_reaped_accumulates_across_runs(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.run(until=2.0)
        sim.schedule(3.0, lambda: None).cancel()
        sim.run()
        assert sim.cancelled_reaped == 2

    def test_max_heap_depth_high_water_mark(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(float(i), lambda: None)
        assert sim.max_heap_depth == 7
        sim.run()
        # Draining does not lower the high-water mark.
        assert sim.max_heap_depth == 7

    def test_wall_time_accumulates(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        sim.run()
        first = sim.wall_time_s
        assert first > 0.0
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.wall_time_s > first

    def test_stats_dict_shape(self):
        sim = Simulator(queue="heap")
        sim.schedule(0.0, lambda: None)
        sim.schedule(1.0, lambda: None).cancel()
        sim.run()
        stats = sim.stats()
        assert stats == {
            "events_processed": 1,
            "cancelled_reaped": 1,
            "max_heap_depth": 2,
            "sim_wall_time_s": sim.wall_time_s,
            "pending_events": 0,
            "pending_live": 0,
            "queue_kind": "heap",
        }

    def test_stats_includes_backend_counters(self):
        sim = Simulator(queue="calendar")
        sim.schedule(0.0, lambda: None)
        sim.run()
        stats = sim.stats()
        assert stats["queue_kind"] == "calendar"
        assert stats["queue_resizes"] == 0

    def test_callback_hook_times_each_event(self):
        sim = Simulator()
        seen = []
        sim.callback_hook = lambda event, dt: seen.append((event.time, dt))
        sim.schedule(0.5, lambda: None)
        sim.schedule(1.5, lambda: None)
        sim.run()
        assert [t for t, _ in seen] == [0.5, 1.5]
        assert all(dt >= 0.0 for _, dt in seen)

    def test_callback_hook_skips_cancelled_events(self):
        sim = Simulator()
        seen = []
        sim.callback_hook = lambda event, dt: seen.append(event.time)
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert seen == [2.0]


class TestPendingLive:
    """pending_events counts queued entries; pending_live excludes
    cancelled-but-unreaped ones."""

    @pytest.mark.parametrize("kind", ["heap", "calendar"])
    def test_cancelled_event_not_counted_live(self, kind):
        sim = Simulator(queue=kind)
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        assert sim.pending_live == 2
        event.cancel()
        assert sim.pending_events == 2
        assert sim.pending_live == 1

    @pytest.mark.parametrize("kind", ["heap", "calendar"])
    def test_double_cancel_counts_once(self, kind):
        sim = Simulator(queue=kind)
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_live == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        event.cancel()
        # The event already fired; the live count must not go negative.
        assert sim.pending_events == 1
        assert sim.pending_live == 1

    def test_reaping_restores_agreement(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        assert sim.pending_live == 1
        sim.run()
        assert sim.pending_events == 0
        assert sim.pending_live == 0
        assert sim.cancelled_reaped == 1


class TestQueueBackends:
    def test_default_kind_is_calendar(self):
        assert Simulator().queue_kind == "calendar"

    def test_explicit_kinds(self):
        assert Simulator(queue="heap").queue_kind == "heap"
        assert Simulator(queue="calendar").queue_kind == "calendar"

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        assert Simulator().queue_kind == "heap"

    def test_unknown_kind_rejected(self):
        from repro.core import ConfigurationError

        with pytest.raises(ConfigurationError):
            Simulator(queue="splay")

    def test_queue_instance_accepted(self):
        from repro.net.eventq import CalendarQueue

        sim = Simulator(queue=CalendarQueue(width=0.5))
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(0.25, out.append, "b")
        sim.run()
        assert out == ["b", "a"]


class TestRunUntilEdgeCases:
    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        out = []
        sim.schedule(2.0, out.append, "edge")
        n = sim.run(until=2.0)
        assert n == 1
        assert out == ["edge"]
        assert sim.now == 2.0

    def test_clock_lands_on_until_after_edge_event(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.schedule(2.5, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_cancelled_event_beyond_until_stays_queued(self):
        sim = Simulator()
        event = sim.schedule(5.0, lambda: None)
        event.cancel()
        sim.run(until=1.0)
        # Not reaped: run() never looked past `until`.
        assert sim.cancelled_reaped == 0
        assert sim.pending_events == 1
        sim.run()
        assert sim.cancelled_reaped == 1
        assert sim.now == 1.0


class TestExclusiveRun:
    """run(until, inclusive=False): the half-open window [now, until)."""

    @pytest.mark.parametrize("kind", ["heap", "calendar"])
    def test_event_exactly_at_until_stays_queued(self, kind):
        sim = Simulator(queue=kind)
        out = []
        sim.schedule(1.0, out.append, "inside")
        sim.schedule(2.0, out.append, "edge")
        n = sim.run(until=2.0, inclusive=False)
        assert n == 1
        assert out == ["inside"]
        assert sim.pending_events == 1
        # The clock still lands on the horizon (window fully executed).
        assert sim.now == 2.0

    @pytest.mark.parametrize("kind", ["heap", "calendar"])
    def test_edge_event_fires_on_next_inclusive_run(self, kind):
        sim = Simulator(queue=kind)
        out = []
        sim.schedule(2.0, out.append, "edge")
        sim.run(until=2.0, inclusive=False)
        sim.run(until=2.0)
        assert out == ["edge"]
        assert sim.now == 2.0

    def test_windowed_runs_match_single_run(self):
        """Advancing in half-open windows + one inclusive tail is
        bit-identical to one run(until) — the sharded engine's core
        assumption."""

        def build(sim, log):
            def tick(tag, n):
                log.append((sim.now, tag, n))
                if n:
                    sim.schedule(0.37, tick, tag, n - 1)
            for i, tag in enumerate("abc"):
                sim.schedule(0.1 * (i + 1), tick, tag, 8)

        one, windowed = [], []
        sim = Simulator()
        build(sim, one)
        sim.run(until=3.0)
        sim2 = Simulator()
        build(sim2, windowed)
        horizon = 0.0
        while horizon < 3.0:
            horizon = min(horizon + 0.5, 3.0)
            sim2.run(until=horizon, inclusive=bool(horizon >= 3.0))
        assert windowed == one
        assert sim2.now == sim.now == 3.0

    @pytest.mark.parametrize("kind", ["heap", "calendar"])
    def test_next_event_time_peeks_without_consuming(self, kind):
        sim = Simulator(queue=kind)
        assert sim.next_event_time() is None
        sim.schedule(1.5, lambda: None)
        sim.schedule(0.5, lambda: None)
        assert sim.next_event_time() == 0.5
        assert sim.pending_events == 2
        sim.run()
        assert sim.next_event_time() is None


class TestCallbackHookHoist:
    """The hook is read once per run() call (hot-loop hoist)."""

    def test_hook_installed_before_run_sees_every_event(self):
        sim = Simulator()
        seen = []
        sim.callback_hook = lambda event, dt: seen.append(event.time)
        for t in (0.1, 0.2, 0.3):
            sim.schedule(t, lambda: None)
        sim.run()
        assert seen == [0.1, 0.2, 0.3]
        assert len(seen) == sim.events_processed

    def test_hook_installed_mid_run_takes_effect_next_run(self):
        sim = Simulator()
        seen = []

        def install():
            sim.callback_hook = lambda event, dt: seen.append(event.time)

        sim.schedule(0.1, install)
        sim.schedule(0.2, lambda: None)
        sim.run()
        # Documented semantics: the attribute is read once per run(), so
        # the in-run install misses this run's remaining events...
        assert seen == []
        sim.schedule_at(0.3, lambda: None)
        sim.run()
        # ...and catches everything from the next call on.
        assert seen == [0.3]

    def test_hook_removed_mid_run_still_fires_this_run(self):
        sim = Simulator()
        seen = []
        sim.callback_hook = lambda event, dt: seen.append(event.time)

        def uninstall():
            sim.callback_hook = None

        sim.schedule(0.1, uninstall)
        sim.schedule(0.2, lambda: None)
        sim.run()
        assert seen == [0.1, 0.2]
