"""Tests for the discrete-event engine."""

import pytest

from repro.core import SimulationError
from repro.net import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(3.0, out.append, "c")
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        sim.run()
        assert out == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        out = []
        for tag in "abcde":
            sim.schedule(1.0, out.append, tag)
        sim.run()
        assert out == list("abcde")

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.schedule(1.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5, 1.25]

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []

        def tick(n):
            out.append((sim.now, n))
            if n < 3:
                sim.schedule(1.0, tick, n + 1)

        sim.schedule(0.0, tick, 0)
        sim.run()
        assert out == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        out = []
        sim.schedule_at(5.0, out.append, "x")
        sim.run()
        assert sim.now == 5.0
        assert out == ["x"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


class TestRunControl:
    def test_run_until_stops_and_sets_clock(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(3.0, out.append, "b")
        n = sim.run(until=2.0)
        assert n == 1
        assert out == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert out == ["a", "b"]

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.schedule(float(i), out.append, i)
        sim.run(max_events=4)
        assert out == [0, 1, 2, 3]

    def test_cancellation(self):
        sim = Simulator()
        out = []
        keep = sim.schedule(1.0, out.append, "keep")
        drop = sim.schedule(2.0, out.append, "drop")
        drop.cancel()
        sim.run()
        assert out == ["keep"]
        assert not keep.cancelled

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_reentrancy_guard(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()
