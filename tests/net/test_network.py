"""Integration tests for the Network builder (topology + flows + sources)."""

import pytest

from repro.core import ConfigurationError, DuplicateFlowError
from repro.net import (
    BurstSource,
    CBRSource,
    Network,
    ServiceTrace,
    TokenBucketShaper,
)


def two_hop(scheduler="srr", **kw):
    net = Network(default_scheduler=scheduler, default_scheduler_kwargs=kw)
    for n in ("h0", "r0", "d0"):
        net.add_node(n)
    net.add_link("h0", "r0", rate_bps=1e6, delay=0.001)
    net.add_link("r0", "d0", rate_bps=1e6, delay=0.001)
    return net


class TestTopology:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(ConfigurationError):
            net.add_node("a")

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b", 1e6)
        with pytest.raises(ConfigurationError):
            net.add_link("a", "b", 1e6)

    def test_link_to_unknown_node_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(ConfigurationError):
            net.add_link("a", "ghost", 1e6)

    def test_bidirectional_creates_two_ports(self):
        net = Network()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b", 1e6)
        assert net.port("a", "b") is not net.port("b", "a")

    def test_unidirectional_link(self):
        net = Network()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b", 1e6, bidirectional=False)
        net.port("a", "b")
        with pytest.raises(ConfigurationError):
            net.port("b", "a")

    def test_per_link_scheduler_override(self):
        net = Network(default_scheduler="drr")
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b", 1e6, scheduler="srr")
        assert type(net.port("a", "b").scheduler).__name__ == "SRRScheduler"


class TestFlows:
    def test_flow_registered_on_path_ports(self):
        net = two_hop()
        net.add_flow("f1", "h0", "d0", weight=2)
        assert net.port("h0", "r0").scheduler.has_flow("f1")
        assert net.port("r0", "d0").scheduler.has_flow("f1")
        assert not net.port("d0", "r0").scheduler.has_flow("f1")

    def test_duplicate_flow_rejected(self):
        net = two_hop()
        net.add_flow("f1", "h0", "d0")
        with pytest.raises(DuplicateFlowError):
            net.add_flow("f1", "h0", "d0")

    def test_remove_flow_cleans_ports(self):
        net = two_hop()
        net.add_flow("f1", "h0", "d0")
        net.remove_flow("f1")
        assert not net.port("h0", "r0").scheduler.has_flow("f1")
        with pytest.raises(ConfigurationError):
            net.remove_flow("f1")

    def test_source_requires_flow(self):
        net = two_hop()
        with pytest.raises(ConfigurationError):
            net.attach_source("ghost", CBRSource(16_000))


class TestEndToEnd:
    def test_cbr_delivery_and_delay(self):
        net = two_hop()
        net.add_flow("f1", "h0", "d0", weight=1)
        net.attach_source("f1", CBRSource(rate_bps=16_000, packet_size=200))
        net.run(until=1.0)
        rec = net.sinks.flow("f1")
        assert rec.packets >= 9
        # Unloaded path: delay = 2 serialisations + 2 propagations
        #              = 2 * 1.6ms + 2 * 1ms = 5.2 ms.
        for d in rec.delays():
            assert d == pytest.approx(5.2e-3, rel=1e-6)

    def test_packet_conservation(self):
        net = two_hop()
        net.add_flow("f1", "h0", "d0", weight=1)
        net.add_flow("f2", "h0", "d0", weight=2)
        s1 = net.attach_source("f1", CBRSource(100_000, 200, stop_at=1.5))
        s2 = net.attach_source("f2", CBRSource(200_000, 200, stop_at=1.5))
        net.run(until=1.0)
        assert net.sinks.total_packets <= s1.packets_emitted + s2.packets_emitted
        # Drain: after the sources stop, every emitted packet must arrive
        # (the offered load is far below the link rate).
        net.run(until=4.0)
        emitted = s1.packets_emitted + s2.packets_emitted
        assert net.sinks.total_packets == emitted
        assert net.total_backlog() == 0

    def test_bottleneck_shares_follow_weights(self):
        net = two_hop()  # both links 1 Mb/s; h0->r0 is the bottleneck
        net.add_flow("heavy", "h0", "d0", weight=3)
        net.add_flow("light", "h0", "d0", weight=1)
        # Both greedy: 2000 packets at once.
        net.attach_source("heavy", BurstSource(2000, 200))
        net.attach_source("light", BurstSource(2000, 200))
        net.run(until=2.0)
        heavy = net.sinks.flow("heavy").packets
        light = net.sinks.flow("light").packets
        assert heavy / light == pytest.approx(3.0, rel=0.05)

    def test_service_trace_on_bottleneck(self):
        net = two_hop()
        net.add_flow("a", "h0", "d0", weight=1)
        net.add_flow("b", "h0", "d0", weight=1)
        trace = ServiceTrace(net.port("h0", "r0"))
        net.attach_source("a", BurstSource(50, 200))
        net.attach_source("b", BurstSource(50, 200))
        net.run(until=1.0)
        seq = trace.slot_sequence()
        assert seq.count("a") == 50 and seq.count("b") == 50
        # SRR with equal weights alternates.
        alternations = sum(1 for x, y in zip(seq, seq[1:]) if x != y)
        assert alternations >= 90

    def test_shaped_source_respects_envelope(self):
        net = two_hop()
        net.add_flow("f", "h0", "d0", weight=1)
        shaper = TokenBucketShaper(sigma_bytes=400, rate_bps=16_000)
        net.attach_source(
            "f", BurstSource(20, 200), shaper=shaper
        )
        net.run(until=5.0)
        rec = net.sinks.flow("f")
        assert rec.packets == 20
        # 20 * 200 B = 4000 B at sigma=400,rho=2000B/s: last conforming
        # departure no earlier than (4000-400)/2000 = 1.8 s.
        assert rec.last_at >= 1.8

    def test_multi_hop_line(self):
        net = Network(default_scheduler="drr")
        names = [f"n{i}" for i in range(5)]
        for n in names:
            net.add_node(n)
        for a, b in zip(names, names[1:]):
            net.add_link(a, b, rate_bps=1e6, delay=0.002)
        net.add_flow("f", "n0", "n4", weight=1)
        net.attach_source("f", CBRSource(64_000, 200))
        net.run(until=1.0)
        rec = net.sinks.flow("f")
        assert rec.packets > 0
        # 4 hops: 4 * (1.6ms + 2ms) = 14.4 ms unloaded.
        assert rec.delays()[0] == pytest.approx(14.4e-3, rel=1e-6)

    @pytest.mark.parametrize("name", ["srr", "drr", "wrr", "wfq", "scfq",
                                      "stfq", "wf2q+", "rr", "fifo"])
    def test_every_scheduler_moves_traffic(self, name):
        net = two_hop(scheduler=name)
        net.add_flow("f1", "h0", "d0", weight=1)
        net.attach_source("f1", CBRSource(64_000, 200))
        net.run(until=0.5)
        assert net.sinks.flow("f1").packets > 0


def _in_flight_slack():
    return 4  # packets possibly on the wire when the clock stops
