"""Property-based tests for routing on random topologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import compute_next_hops, shortest_path


@st.composite
def random_connected_graph(draw):
    """A random connected undirected graph with unit/random costs."""
    n = draw(st.integers(min_value=2, max_value=12))
    nodes = [f"n{i}" for i in range(n)]
    adjacency = {name: [] for name in nodes}

    def connect(a, b, cost):
        if all(nb != b for nb, _c in adjacency[a]):
            adjacency[a].append((b, cost))
            adjacency[b].append((a, cost))

    # Spanning chain guarantees connectivity.
    for a, b in zip(nodes, nodes[1:]):
        cost = draw(st.integers(min_value=1, max_value=5))
        connect(a, b, cost)
    # Extra random edges.
    extras = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extras):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1))
        if i != j:
            connect(nodes[i], nodes[j],
                    draw(st.integers(min_value=1, max_value=5)))
    return adjacency


def path_cost(adjacency, path):
    total = 0.0
    for a, b in zip(path, path[1:]):
        total += next(c for nb, c in adjacency[a] if nb == b)
    return total


class TestRoutingProperties:
    @given(random_connected_graph())
    @settings(max_examples=40, deadline=None)
    def test_next_hops_reach_every_destination_loop_free(self, adjacency):
        tables = compute_next_hops(adjacency)
        nodes = list(adjacency)
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                # Follow the next-hop chain; it must reach dst without
                # revisiting a node.
                seen = {src}
                node = src
                while node != dst:
                    node = tables[node][dst]
                    assert node not in seen, "routing loop"
                    seen.add(node)

    @given(random_connected_graph())
    @settings(max_examples=40, deadline=None)
    def test_next_hop_walk_cost_equals_shortest_path(self, adjacency):
        tables = compute_next_hops(adjacency)
        nodes = list(adjacency)
        src, dst = nodes[0], nodes[-1]
        sp = shortest_path(adjacency, src, dst)
        # Walk the tables and compare total cost with the shortest path.
        walk = [src]
        while walk[-1] != dst:
            walk.append(tables[walk[-1]][dst])
        assert path_cost(adjacency, walk) == path_cost(adjacency, sp)

    @given(random_connected_graph())
    @settings(max_examples=30, deadline=None)
    def test_shortest_path_endpoints_and_adjacency(self, adjacency):
        nodes = list(adjacency)
        sp = shortest_path(adjacency, nodes[0], nodes[-1])
        assert sp[0] == nodes[0] and sp[-1] == nodes[-1]
        for a, b in zip(sp, sp[1:]):
            assert any(nb == b for nb, _c in adjacency[a])
