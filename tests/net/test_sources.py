"""Tests for traffic sources."""

import pytest

from repro.core import ConfigurationError
from repro.net import (
    BurstSource,
    CBRSource,
    ExponentialOnOffSource,
    ParetoOnOffSource,
    PoissonSource,
    Simulator,
    TraceSource,
)


def run_source(source, until):
    sim = Simulator()
    emissions = []
    source.bind(sim, lambda size: emissions.append((sim.now, size)))
    source.start()
    sim.run(until=until)
    return emissions


class TestCBR:
    def test_exact_spacing(self):
        # 200 B at 16 kb/s -> one packet every 0.1 s.
        src = CBRSource(rate_bps=16_000, packet_size=200)
        emissions = run_source(src, until=1.0)
        times = [t for t, _s in emissions]
        assert len(times) == 11  # t = 0.0 .. 1.0 inclusive
        for i, t in enumerate(times):
            assert t == pytest.approx(i * 0.1)

    def test_start_stop_window(self):
        src = CBRSource(16_000, 200, start_at=0.5, stop_at=0.85)
        emissions = run_source(src, until=2.0)
        times = [t for t, _s in emissions]
        assert times[0] == pytest.approx(0.5)
        assert times[-1] <= 0.85

    def test_average_rate(self):
        src = CBRSource(rate_bps=1_000_000, packet_size=500)
        emissions = run_source(src, until=1.0)
        bits = sum(s * 8 for _t, s in emissions)
        assert bits == pytest.approx(1_000_000, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CBRSource(0)
        with pytest.raises(ConfigurationError):
            CBRSource(1000, 0)


class TestPoisson:
    def test_mean_rate(self):
        src = PoissonSource(mean_rate_bps=800_000, packet_size=100, seed=7)
        emissions = run_source(src, until=10.0)
        bits = sum(s * 8 for _t, s in emissions)
        assert bits / 10.0 == pytest.approx(800_000, rel=0.1)

    def test_reproducible_with_seed(self):
        a = run_source(PoissonSource(100_000, 100, seed=3), until=2.0)
        b = run_source(PoissonSource(100_000, 100, seed=3), until=2.0)
        assert a == b

    def test_interarrival_variability(self):
        emissions = run_source(PoissonSource(100_000, 100, seed=5), until=5.0)
        times = [t for t, _s in emissions]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(set(round(g, 9) for g in gaps)) > len(gaps) // 2


class TestParetoOnOff:
    def test_mean_rate_property(self):
        src = ParetoOnOffSource(
            peak_rate_bps=4_000_000, mean_on=0.1, mean_off=0.1
        )
        assert src.mean_rate_bps == pytest.approx(2_000_000)

    def test_long_run_rate_near_mean(self):
        src = ParetoOnOffSource(
            peak_rate_bps=2_000_000,
            packet_size=200,
            mean_on=0.05,
            mean_off=0.05,
            alpha=1.9,  # lighter tail converges faster
            seed=11,
        )
        emissions = run_source(src, until=60.0)
        bits = sum(s * 8 for _t, s in emissions)
        assert bits / 60.0 == pytest.approx(1_000_000, rel=0.35)

    def test_bursty_structure(self):
        """On/off structure: gaps are bimodal (packet spacing vs off
        periods), unlike CBR."""
        src = ParetoOnOffSource(
            peak_rate_bps=1_000_000, packet_size=200, seed=2
        )
        emissions = run_source(src, until=10.0)
        times = [t for t, _s in emissions]
        gaps = [b - a for a, b in zip(times, times[1:])]
        spacing = 200 * 8 / 1_000_000
        long_gaps = [g for g in gaps if g > 3 * spacing]
        short_gaps = [g for g in gaps if g <= 1.5 * spacing]
        assert long_gaps and short_gaps

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            ParetoOnOffSource(1e6, alpha=1.0)
        with pytest.raises(ConfigurationError):
            ParetoOnOffSource(1e6, mean_on=0)

    def test_reproducible(self):
        mk = lambda: ParetoOnOffSource(1e6, 200, seed=9)
        assert run_source(mk(), 5.0) == run_source(mk(), 5.0)


class TestExponentialOnOff:
    def test_emits_and_reproducible(self):
        mk = lambda: ExponentialOnOffSource(1e6, 200, seed=4)
        a, b = run_source(mk(), 5.0), run_source(mk(), 5.0)
        assert a and a == b


class TestBurst:
    def test_instant_burst(self):
        src = BurstSource(5, packet_size=100, at=1.0)
        emissions = run_source(src, until=2.0)
        assert len(emissions) == 5
        assert all(t == pytest.approx(1.0) for t, _s in emissions)

    def test_spaced_burst(self):
        src = BurstSource(3, packet_size=100, at=0.0, spacing=0.5)
        emissions = run_source(src, until=2.0)
        assert [t for t, _s in emissions] == pytest.approx([0.0, 0.5, 1.0])

    def test_counters(self):
        src = BurstSource(4, packet_size=250)
        run_source(src, until=1.0)
        assert src.packets_emitted == 4
        assert src.bytes_emitted == 1000


class TestTrace:
    def test_replays_schedule(self):
        src = TraceSource([(0.2, 100), (0.1, 300), (0.7, 50)])
        emissions = run_source(src, until=1.0)
        assert emissions == [(0.1, 300), (0.2, 100), (0.7, 50)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceSource([(-1.0, 100)])
        with pytest.raises(ConfigurationError):
            TraceSource([(0.0, 0)])
