"""Tests for traffic sources."""

import pytest

from repro.core import ConfigurationError
from repro.net import (
    BurstSource,
    CBRSource,
    ExponentialOnOffSource,
    ParetoOnOffSource,
    PoissonSource,
    Simulator,
    TraceSource,
)


def run_source(source, until):
    sim = Simulator()
    emissions = []
    source.bind(sim, lambda size: emissions.append((sim.now, size)))
    source.start()
    sim.run(until=until)
    return emissions


class TestCBR:
    def test_exact_spacing(self):
        # 200 B at 16 kb/s -> one packet every 0.1 s.
        src = CBRSource(rate_bps=16_000, packet_size=200)
        emissions = run_source(src, until=1.0)
        times = [t for t, _s in emissions]
        assert len(times) == 11  # t = 0.0 .. 1.0 inclusive
        for i, t in enumerate(times):
            assert t == pytest.approx(i * 0.1)

    def test_start_stop_window(self):
        src = CBRSource(16_000, 200, start_at=0.5, stop_at=0.85)
        emissions = run_source(src, until=2.0)
        times = [t for t, _s in emissions]
        assert times[0] == pytest.approx(0.5)
        assert times[-1] <= 0.85

    def test_average_rate(self):
        src = CBRSource(rate_bps=1_000_000, packet_size=500)
        emissions = run_source(src, until=1.0)
        bits = sum(s * 8 for _t, s in emissions)
        assert bits == pytest.approx(1_000_000, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CBRSource(0)
        with pytest.raises(ConfigurationError):
            CBRSource(1000, 0)


class TestPoisson:
    def test_mean_rate(self):
        src = PoissonSource(mean_rate_bps=800_000, packet_size=100, seed=7)
        emissions = run_source(src, until=10.0)
        bits = sum(s * 8 for _t, s in emissions)
        assert bits / 10.0 == pytest.approx(800_000, rel=0.1)

    def test_reproducible_with_seed(self):
        a = run_source(PoissonSource(100_000, 100, seed=3), until=2.0)
        b = run_source(PoissonSource(100_000, 100, seed=3), until=2.0)
        assert a == b

    def test_interarrival_variability(self):
        emissions = run_source(PoissonSource(100_000, 100, seed=5), until=5.0)
        times = [t for t, _s in emissions]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(set(round(g, 9) for g in gaps)) > len(gaps) // 2


class TestParetoOnOff:
    def test_mean_rate_property(self):
        src = ParetoOnOffSource(
            peak_rate_bps=4_000_000, mean_on=0.1, mean_off=0.1
        )
        assert src.mean_rate_bps == pytest.approx(2_000_000)

    def test_long_run_rate_near_mean(self):
        src = ParetoOnOffSource(
            peak_rate_bps=2_000_000,
            packet_size=200,
            mean_on=0.05,
            mean_off=0.05,
            alpha=1.9,  # lighter tail converges faster
            seed=11,
        )
        emissions = run_source(src, until=60.0)
        bits = sum(s * 8 for _t, s in emissions)
        assert bits / 60.0 == pytest.approx(1_000_000, rel=0.35)

    def test_bursty_structure(self):
        """On/off structure: gaps are bimodal (packet spacing vs off
        periods), unlike CBR."""
        src = ParetoOnOffSource(
            peak_rate_bps=1_000_000, packet_size=200, seed=2
        )
        emissions = run_source(src, until=10.0)
        times = [t for t, _s in emissions]
        gaps = [b - a for a, b in zip(times, times[1:])]
        spacing = 200 * 8 / 1_000_000
        long_gaps = [g for g in gaps if g > 3 * spacing]
        short_gaps = [g for g in gaps if g <= 1.5 * spacing]
        assert long_gaps and short_gaps

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            ParetoOnOffSource(1e6, alpha=1.0)
        with pytest.raises(ConfigurationError):
            ParetoOnOffSource(1e6, mean_on=0)

    def test_reproducible(self):
        mk = lambda: ParetoOnOffSource(1e6, 200, seed=9)
        assert run_source(mk(), 5.0) == run_source(mk(), 5.0)


class TestExponentialOnOff:
    def test_emits_and_reproducible(self):
        mk = lambda: ExponentialOnOffSource(1e6, 200, seed=4)
        a, b = run_source(mk(), 5.0), run_source(mk(), 5.0)
        assert a and a == b


class TestBurst:
    def test_instant_burst(self):
        src = BurstSource(5, packet_size=100, at=1.0)
        emissions = run_source(src, until=2.0)
        assert len(emissions) == 5
        assert all(t == pytest.approx(1.0) for t, _s in emissions)

    def test_spaced_burst(self):
        src = BurstSource(3, packet_size=100, at=0.0, spacing=0.5)
        emissions = run_source(src, until=2.0)
        assert [t for t, _s in emissions] == pytest.approx([0.0, 0.5, 1.0])

    def test_counters(self):
        src = BurstSource(4, packet_size=250)
        run_source(src, until=1.0)
        assert src.packets_emitted == 4
        assert src.bytes_emitted == 1000


class TestTrace:
    def test_replays_schedule(self):
        src = TraceSource([(0.2, 100), (0.1, 300), (0.7, 50)])
        emissions = run_source(src, until=1.0)
        assert emissions == [(0.1, 300), (0.2, 100), (0.7, 50)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceSource([(-1.0, 100)])
        with pytest.raises(ConfigurationError):
            TraceSource([(0.0, 0)])


class TestDriftFreeGrids:
    """Periodic arrivals are start + n*interval, not accumulated sums."""

    def test_cbr_emissions_on_exact_grid(self):
        # 0.1 s is not float-representable, so accumulated `now + interval`
        # would drift off the grid; the epoch form must not.
        src = CBRSource(rate_bps=16_000, packet_size=200, start_at=0.25)
        emissions = run_source(src, until=500.0)
        interval = src.interval
        assert len(emissions) > 4000
        for n, (t, _size) in enumerate(emissions):
            assert t == 0.25 + n * interval  # exact equality, no approx

    def test_cbr_batching_does_not_change_emissions(self):
        a = run_source(CBRSource(16_000, 200, batch=1), until=10.0)
        b = run_source(CBRSource(16_000, 200, batch=64), until=10.0)
        c = run_source(CBRSource(16_000, 200, batch=1000), until=10.0)
        assert a == b == c

    def test_cbr_stop_at_schedules_no_dead_events(self):
        sim = Simulator()
        src = CBRSource(16_000, 200, stop_at=0.35)
        src.bind(sim, lambda size: None)
        src.start()
        sim.run()
        # Emissions at 0.0, 0.1, 0.2, 0.3 — and the clock never ran past
        # the last one (no events linger beyond stop_at).
        assert src.packets_emitted == 4
        assert sim.now == pytest.approx(0.3)
        assert sim.pending_events == 0

    def test_on_off_phase_uses_exact_grid(self):
        sim = Simulator()
        times = []
        phases = []

        class Recorder(ExponentialOnOffSource):
            def _begin_on(self):
                emitted = self.packets_emitted
                super()._begin_on()
                if self.packets_emitted > emitted:
                    phases.append(self._on_epoch)

        src = Recorder(
            peak_rate_bps=160_000, packet_size=200, mean_on=0.5,
            mean_off=0.1, seed=3,
        )
        src.bind(sim, lambda size: times.append(sim.now))
        src.start()
        sim.run(until=20.0)
        assert len(times) > 100
        assert len(phases) > 3
        interval = src.interval
        # Each emission sits exactly on its ON phase's grid.
        bounds = phases[1:] + [float("inf")]
        it = iter(times)
        t = next(it)
        for epoch, nxt in zip(phases, bounds):
            n = 0
            while t is not None and t < nxt:
                assert t == epoch + n * interval  # exact equality
                n += 1
                t = next(it, None)
        assert t is None  # every emission was matched to a phase

    def test_ulp_drift_at_ten_million_packets(self):
        # The property behind the grid form: accumulating `t += interval`
        # 10^7 times drifts by thousands of ulps, while the closed form
        # start + n*interval stays within one rounding step of the exact
        # rational value at any n.
        from fractions import Fraction
        import math
        import random

        rng = random.Random(1234)
        n = 10_000_000
        for _ in range(5):
            start = rng.uniform(0.0, 10.0)
            interval = rng.uniform(1e-7, 1e-5)
            grid = start + n * interval
            exact = Fraction(start) + n * Fraction(interval)
            assert abs(Fraction(grid) - exact) <= 2 * Fraction(math.ulp(grid))

        # And the accumulated form really does drift (the bug the grid
        # form fixes): one deterministic witness is enough.
        interval = 0.1
        acc = 0.0
        for _ in range(n):
            acc += interval
        exact = n * Fraction(interval)
        assert abs(Fraction(acc) - exact) > 1000 * Fraction(math.ulp(acc))
