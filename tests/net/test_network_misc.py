"""Misc Network-builder paths not covered elsewhere."""

import pytest

from repro.core import ConfigurationError, SRRScheduler, UnknownFlowError
from repro.net import CBRSource, Network


def tri():
    net = Network(default_scheduler="srr")
    for n in ("a", "b", "c"):
        net.add_node(n)
    net.add_link("a", "b", 1e6, delay=0.001)
    net.add_link("b", "c", 1e6, delay=0.001)
    return net


class TestNetworkMisc:
    def test_routes_recomputed_after_topology_change(self):
        net = tri()
        net.add_flow("f", "a", "c")
        assert net.flows["f"].path == ["a", "b", "c"]
        # A direct cheaper link appears; new flows take it.
        net.add_link("a", "c", 1e6, delay=0.001, cost=0.5)
        net.add_flow("g", "a", "c")
        assert net.flows["g"].path == ["a", "c"]

    def test_port_lookup_error(self):
        net = tri()
        with pytest.raises(ConfigurationError):
            net.port("a", "c")

    def test_total_backlog(self):
        net = tri()
        net.add_flow("f", "a", "c", weight=1)
        # 2 Mb/s into a 1 Mb/s link: backlog accumulates.
        net.attach_source("f", CBRSource(2e6, packet_size=500))
        net.run(until=0.5)
        assert net.total_backlog() > 50

    def test_factory_scheduler_with_kwargs(self):
        captured = {}

        def factory(**kw):
            captured.update(kw)
            return SRRScheduler()

        net = Network(default_scheduler=factory,
                      default_scheduler_kwargs={"hint": 7})
        net.add_node("x")
        net.add_node("y")
        net.add_link("x", "y", 1e6)
        assert captured == {"hint": 7}

    def test_link_buffer_packets_applied(self):
        net = Network(default_scheduler="fifo")
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b", 1e6, buffer_packets=5)
        assert net.port("a", "b").buffer_packets == 5

    def test_source_on_unknown_flow(self):
        net = tri()
        with pytest.raises(ConfigurationError):
            net.attach_source("nope", CBRSource(1000))

    def test_remove_unknown_flow(self):
        net = tri()
        with pytest.raises(ConfigurationError):
            net.remove_flow("nope")

    def test_repr(self):
        net = tri()
        assert "nodes=3" in repr(net)

    def test_enqueue_unregistered_flow_at_port_raises(self):
        net = tri()
        from repro.core import Packet

        with pytest.raises(UnknownFlowError):
            net.port("a", "b").scheduler.enqueue(Packet("ghost", 10))
