"""Property tests for the pluggable event-queue backends.

The determinism contract: HeapQueue and CalendarQueue dequeue in exactly
``(time, seq)`` order — same events, same order, bit-identical — under
random times, ties, cancellations, and mid-run inserts, across calendar
resizes.
"""

import random

import pytest

from repro.core import ConfigurationError
from repro.net import CalendarQueue, HeapQueue, Simulator, make_queue
from repro.net.engine import Event


def _event(time, seq):
    return Event(time, seq, lambda: None, ())


def _drain(queue):
    out = []
    while queue.size:
        event = queue.pop()
        out.append((event.time, event.seq))
    return out


def _make_queues():
    return HeapQueue(), CalendarQueue()


class TestOrderEquivalence:
    def test_random_times(self):
        rng = random.Random(11)
        events = [_event(rng.random() * 100.0, seq) for seq in range(5000)]
        heap, cal = _make_queues()
        for e in events:
            heap.push(e)
            cal.push(_event(e.time, e.seq))
        assert _drain(heap) == _drain(cal)

    def test_ties_break_by_seq(self):
        rng = random.Random(12)
        # Few distinct times, many events: mostly ties.
        times = [rng.random() for _ in range(7)]
        events = [_event(rng.choice(times), seq) for seq in range(2000)]
        heap, cal = _make_queues()
        for e in events:
            heap.push(e)
            cal.push(_event(e.time, e.seq))
        order = _drain(cal)
        assert order == _drain(heap)
        assert order == sorted(order)

    def test_mid_run_inserts(self):
        # Interleave pops with pushes, including pushes landing in the
        # calendar's current (being-drained) epoch and far future.
        rng = random.Random(13)
        heap, cal = _make_queues()
        seq = 0
        now = 0.0
        out_heap, out_cal = [], []
        for _ in range(3000):
            if heap.size and rng.random() < 0.45:
                a = heap.pop()
                b = cal.pop()
                out_heap.append((a.time, a.seq))
                out_cal.append((b.time, b.seq))
                now = max(now, a.time)
            else:
                # Never schedule into the past (the Simulator forbids it).
                t = now + rng.choice([0.0, 1e-9, 0.001, 0.5, 50.0]) * rng.random()
                heap.push(_event(t, seq))
                cal.push(_event(t, seq))
                seq += 1
        out_heap.extend(_drain(heap))
        out_cal.extend(_drain(cal))
        assert out_heap == out_cal
        assert out_cal == sorted(out_cal)

    def test_burst_then_sparse_resizes(self):
        # A dense burst (forces a shrink) followed by sparse events
        # (forces widens); order must survive every rebuild.
        rng = random.Random(14)
        heap, cal = _make_queues()
        seq = 0
        for _ in range(4000):  # dense: 4000 events in ~1 time unit
            t = rng.random()
            heap.push(_event(t, seq))
            cal.push(_event(t, seq))
            seq += 1
        for i in range(500):  # sparse: one event per ~10 time units
            t = 10.0 + i * 10.0 + rng.random()
            heap.push(_event(t, seq))
            cal.push(_event(t, seq))
            seq += 1
        assert _drain(heap) == _drain(cal)
        assert cal.resizes > 0

    @pytest.mark.parametrize("kind", ["heap", "calendar"])
    def test_simulator_cancellation_equivalence(self, kind):
        # Cancelled events are skipped identically through the engine.
        rng = random.Random(15)
        sim = Simulator(queue=kind)
        fired = []
        events = [
            sim.schedule(rng.random() * 10.0, fired.append, i)
            for i in range(500)
        ]
        for e in rng.sample(events, 200):
            e.cancel()
        sim.run()
        expected = sorted(
            (e.time, e.seq) for e in events if not e.cancelled
        )
        assert len(fired) == 300
        assert [events[i].time for i in fired] == [t for t, _ in expected]

    def test_extreme_times(self):
        heap, cal = _make_queues()
        times = [0.0, 1e-300, 1e300, float("inf"), 12.5, 1e-12]
        for seq, t in enumerate(times):
            heap.push(_event(t, seq))
            cal.push(_event(t, seq))
        assert _drain(heap) == _drain(cal)


class TestCalendarInternals:
    def test_peek_matches_pop(self):
        rng = random.Random(16)
        cal = CalendarQueue()
        for seq in range(1000):
            cal.push(_event(rng.random() * 5.0, seq))
        while cal.size:
            peeked = cal.peek()
            popped = cal.pop()
            assert peeked is popped
        assert cal.peek() is None

    def test_width_adapts_to_density(self):
        cal = CalendarQueue(width=1.0)
        rng = random.Random(17)
        for seq in range(5000):  # 5000 events in one initial bucket
            cal.push(_event(rng.random(), seq))
        _drain(cal)
        assert cal.resizes >= 1
        assert cal.width < 1.0

    def test_stats_exposes_resizes(self):
        cal = CalendarQueue()
        assert cal.stats() == {"queue_resizes": 0}

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CalendarQueue(width=0.0)
        with pytest.raises(ConfigurationError):
            CalendarQueue(target_per_bucket=0)
        with pytest.raises(ConfigurationError):
            CalendarQueue(target_per_bucket=16, resize_hi=20)

    def test_len_and_bool(self):
        cal = CalendarQueue()
        assert not cal and len(cal) == 0
        cal.push(_event(1.0, 0))
        assert cal and len(cal) == 1


class TestMakeQueue:
    def test_kinds(self):
        assert make_queue("heap").kind == "heap"
        assert make_queue("calendar").kind == "calendar"

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert make_queue().kind == "calendar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        assert make_queue().kind == "heap"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(ConfigurationError):
            make_queue()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_queue("fibonacci")
