"""Tests for the token-bucket shaper."""

import pytest

from repro.core import ConfigurationError, Packet
from repro.net import Simulator, TokenBucketShaper


def make(sigma=1000, rate=8000):
    """Shaper with capture of forwarded (time, seq) pairs."""
    sim = Simulator()
    shaper = TokenBucketShaper(sigma_bytes=sigma, rate_bps=rate)
    out = []
    shaper.bind(sim, lambda p: out.append((sim.now, p.seq)))
    return sim, shaper, out


class TestTokenBucket:
    def test_burst_within_sigma_passes_immediately(self):
        sim, shaper, out = make(sigma=1000, rate=8000)
        for i in range(5):
            shaper.offer(Packet("f", 200, seq=i))
        sim.run()
        assert [t for t, _ in out] == [0.0] * 5  # 5 * 200 = sigma

    def test_excess_burst_is_paced_at_rho(self):
        sim, shaper, out = make(sigma=400, rate=8000)  # 1000 B/s fill
        for i in range(4):
            shaper.offer(Packet("f", 200, seq=i))
        sim.run()
        times = [t for t, _ in out]
        # First two conform (400 B bucket); then one per 0.2 s.
        assert times[0] == times[1] == 0.0
        assert times[2] == pytest.approx(0.2)
        assert times[3] == pytest.approx(0.4)

    def test_long_run_rate_bounded_by_rho(self):
        sim, shaper, out = make(sigma=200, rate=16_000)  # 2000 B/s
        for i in range(100):
            shaper.offer(Packet("f", 200, seq=i))
        sim.run()
        duration = out[-1][0]
        total_bytes = 100 * 200
        # sigma + rho * T envelope.
        assert total_bytes <= 200 + 2000 * duration + 1e-6

    def test_fifo_order_preserved(self):
        sim, shaper, out = make(sigma=200, rate=8000)
        for i in range(10):
            shaper.offer(Packet("f", 200, seq=i))
        sim.run()
        assert [seq for _t, seq in out] == list(range(10))

    def test_tokens_refill_during_idle(self):
        sim, shaper, out = make(sigma=400, rate=8000)
        shaper.offer(Packet("f", 400, seq=0))  # drains the bucket
        sim.run()
        # Idle for 0.5 s -> 500 B refilled (capped at sigma = 400).
        sim.schedule(0.5, lambda: shaper.offer(Packet("f", 400, seq=1)))
        sim.run()
        assert out[1][0] == pytest.approx(0.5)

    def test_counters(self):
        sim, shaper, _out = make(sigma=200, rate=8000)
        for i in range(3):
            shaper.offer(Packet("f", 200, seq=i))
        assert shaper.packets_shaped == 3
        assert shaper.packets_delayed == 2
        assert shaper.backlog == 2
        sim.run()
        assert shaper.backlog == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucketShaper(0, 1000)
        with pytest.raises(ConfigurationError):
            TokenBucketShaper(100, 0)
