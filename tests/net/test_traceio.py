"""Tests for trace persistence (round-trip exactness)."""

import pytest

from repro.core import ConfigurationError
from repro.analysis import service_fairness_index, summarize_delays
from repro.net import BurstSource, CBRSource, Network, ServiceTrace
from repro.net.traceio import (
    load_delivery_trace,
    load_service_trace,
    save_delivery_trace,
    save_service_trace,
)


def run_net():
    net = Network(default_scheduler="srr")
    for n in ("h", "r", "d"):
        net.add_node(n)
    net.add_link("h", "r", rate_bps=10e6, delay=0.001)
    net.add_link("r", "d", rate_bps=1e6, delay=0.001)
    net.add_flow("a", "h", "d", weight=2)
    net.add_flow("b", "h", "d", weight=1)
    trace = ServiceTrace(net.port("r", "d"))
    net.attach_source("a", CBRSource(400_000, packet_size=500))
    net.attach_source("b", BurstSource(60, packet_size=500))
    net.run(until=1.0)
    return net, trace


class TestDeliveryTrace:
    def test_round_trip_exact(self, tmp_path):
        net, _trace = run_net()
        path = tmp_path / "deliveries.csv"
        rows = save_delivery_trace(net.sinks, path)
        assert rows == net.sinks.total_packets
        records = load_delivery_trace(path)
        assert len(records) == rows
        original = sorted(
            (str(r.flow_id), r.seq, r.size, r.created_at, r.delivered_at)
            for flow in net.sinks.flows.values()
            for r in flow.records
        )
        loaded = sorted(
            (r.flow_id, r.seq, r.size, r.created_at, r.delivered_at)
            for r in records
        )
        # repr() round-trips floats exactly.
        assert loaded == original

    def test_loaded_records_analyzable(self, tmp_path):
        net, _trace = run_net()
        path = tmp_path / "deliveries.csv"
        save_delivery_trace(net.sinks, path)
        records = load_delivery_trace(path)
        delays = [r.delay for r in records if r.flow_id == "a"]
        stats = summarize_delays(delays)
        assert stats.count == net.sinks.flow("a").packets

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(ConfigurationError):
            load_delivery_trace(path)


class TestServiceTrace:
    def test_round_trip_exact(self, tmp_path):
        net, trace = run_net()
        path = tmp_path / "service.csv"
        rows = save_service_trace(trace, path)
        assert rows == len(trace)
        loaded = load_service_trace(path)
        assert [(t, str(f), s) for t, f, s in trace.entries] == loaded

    def test_loaded_trace_feeds_fairness_analysis(self, tmp_path):
        net, trace = run_net()
        path = tmp_path / "service.csv"
        save_service_trace(trace, path)
        loaded = load_service_trace(path)
        sfi = service_fairness_index(
            loaded, {"a": 2, "b": 1}, window=0.05
        )
        assert sfi >= 0.0

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("a,b,c,d\n")
        with pytest.raises(ConfigurationError):
            load_service_trace(path)
