"""Tests for packet-lifecycle tracing (repro.obs.trace)."""

import pytest

from repro.net import CBRSource, Network, Simulator
from repro.obs.trace import Tracer, get_tracer, set_tracer, trace_network


@pytest.fixture
def restore_tracer():
    previous = get_tracer()
    yield
    set_tracer(previous)


def small_net():
    net = Network(default_scheduler="srr")
    for n in ("h", "r", "d"):
        net.add_node(n)
    net.add_link("h", "r", rate_bps=10e6, delay=0.001)
    net.add_link("r", "d", rate_bps=1e6, delay=0.001)
    return net


class TestTracerBuffer:
    def test_emit_and_filter(self):
        tr = Tracer()
        tr.emit("enqueue", 0.5, port="p", flow="f", uid=1)
        tr.emit("transmit", 1.0, port="p", flow="f", uid=1)
        assert len(tr) == 2
        assert tr.events("enqueue") == [
            {"t": 0.5, "kind": "enqueue", "port": "p", "flow": "f", "uid": 1}
        ]

    def test_none_fields_dropped(self):
        tr = Tracer()
        tr.emit("drop", 0.0, port="p", flow=None)
        assert tr.events() == [{"t": 0.0, "kind": "drop", "port": "p"}]

    def test_ring_keeps_newest(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.emit("enqueue", float(i), uid=i)
        assert len(tr) == 4
        assert tr.emitted == 10
        assert tr.dropped == 6
        assert [e["uid"] for e in tr.events()] == [6, 7, 8, 9]

    def test_wrap_at_exact_capacity(self):
        tr = Tracer(capacity=4)
        for i in range(4):
            tr.emit("enqueue", float(i), uid=i)
        # Exactly full: everything retained, nothing counted dropped.
        assert len(tr) == 4 and tr.dropped == 0
        assert [e["uid"] for e in tr.events()] == [0, 1, 2, 3]
        tr.emit("enqueue", 4.0, uid=4)
        assert len(tr) == 4 and tr.dropped == 1
        assert [e["uid"] for e in tr.events()] == [1, 2, 3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        tr = Tracer()
        tr.emit("enqueue", 0.0)
        tr.clear()
        assert len(tr) == 0 and tr.emitted == 0


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tr = Tracer()
        tr.emit("enqueue", 0.25, port="p", flow="f1", uid=7, size=200)
        tr.emit("dequeue", 0.5, port="p", flow="f1", uid=7, waited_s=0.25)
        path = str(tmp_path / "trace.jsonl")
        assert tr.write_jsonl(path) == 2
        assert Tracer.read_jsonl(path) == tr.events()

    def test_file_object_and_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 0.0, "kind": "drop"}\n\n')
        with open(path) as fh:
            events = Tracer.read_jsonl(fh)
        assert events == [{"t": 0.0, "kind": "drop"}]

    def test_truncated_final_line_tolerated(self, tmp_path):
        """A crash mid-write loses at most the last event, not the file."""
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t": 0.0, "kind": "drop"}\n{"t": 0.5, "kind": "deq'
        )
        assert Tracer.read_jsonl(str(path)) == [{"t": 0.0, "kind": "drop"}]

    def test_mid_file_garbage_raises_artifact_error(self, tmp_path):
        from repro.core.errors import ArtifactError

        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t": 0.0, "kind": "drop"}\nnot json\n{"t": 1.0, "kind": "drop"}\n'
        )
        with pytest.raises(ArtifactError) as info:
            Tracer.read_jsonl(str(path))
        assert "line 2" in str(info.value)

    def test_write_is_atomic(self, tmp_path):
        tr = Tracer()
        tr.emit("enqueue", 0.25, port="p", flow="f1")
        path = tmp_path / "trace.jsonl"
        tr.write_jsonl(str(path))
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]


class TestEngineHook:
    def test_records_slow_callbacks(self):
        sim = Simulator()
        tr = Tracer()
        sim.callback_hook = tr.engine_hook(threshold_s=0.0)
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        sim.run()
        events = tr.events("sim_event")
        assert len(events) == 2
        assert events[0]["t"] == pytest.approx(0.1)
        assert "fn" in events[0] and "elapsed_s" in events[0]

    def test_threshold_filters(self):
        sim = Simulator()
        tr = Tracer()
        sim.callback_hook = tr.engine_hook(threshold_s=10.0)
        sim.schedule(0.1, lambda: None)
        sim.run()
        assert tr.events("sim_event") == []


class TestPortEmission:
    def test_lifecycle_events_from_network_run(self, restore_tracer):
        tr = Tracer()
        set_tracer(tr)
        net = small_net()
        net.add_flow("f1", "h", "d", weight=1)
        net.attach_source(
            "f1", CBRSource(rate_bps=80_000, packet_size=200, stop_at=0.5)
        )
        net.run(until=2.0)
        kinds = {e["kind"] for e in tr.events()}
        assert {"enqueue", "sched_decision", "dequeue", "transmit"} <= kinds
        # Store-and-forward conservation: every transmit had a dequeue,
        # every dequeue an enqueue; two hops each see every packet.
        n_tx = len(tr.events("transmit"))
        assert n_tx == len(tr.events("dequeue"))
        assert n_tx == len(tr.events("enqueue"))
        assert n_tx == 2 * net.sinks.flows["f1"].packets
        waited = tr.events("dequeue")[0]
        assert waited["waited_s"] >= 0.0
        assert waited["port"] and waited["flow"] == "f1"

    def test_drop_events(self, restore_tracer):
        tr = Tracer()
        set_tracer(tr)
        net = Network(default_scheduler="srr")
        for n in ("h", "d"):
            net.add_node(n)
        net.add_link("h", "d", rate_bps=8_000, delay=0.001,
                     buffer_packets=2)
        net.add_flow("f1", "h", "d", weight=1)
        net.attach_source(
            "f1", CBRSource(rate_bps=800_000, packet_size=100, stop_at=0.2)
        )
        net.run(until=1.0)
        drops = tr.events("drop")
        assert drops, "overloaded 2-packet buffer must drop"
        assert drops[0]["flow"] == "f1"
        port = next(iter(net.nodes["h"].ports.values()))
        assert len(drops) == port.drops

    def test_ports_off_by_default(self):
        assert get_tracer() is None
        net = small_net()
        port = next(iter(net.nodes["h"].ports.values()))
        assert port.tracer is None

    def test_trace_network_retrofits(self):
        net = small_net()
        tr = Tracer()
        assert trace_network(net, tr) is tr
        for node in net.nodes.values():
            for port in node.ports.values():
                assert port.tracer is tr


class TestCliFlag:
    def test_bench_trace_flag_writes_jsonl(self, tmp_path, capsys):
        from repro.bench.runner import main

        path = str(tmp_path / "e3.jsonl")
        rc = main([
            "e3", "--quick", "--no-artifact", "--quiet",
            "--jobs", "2", "--trace", path,
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "forces --jobs 1" in err
        events = Tracer.read_jsonl(path)
        assert events, "a network experiment must emit lifecycle events"
        assert {"enqueue", "transmit"} <= {e["kind"] for e in events}
        # The flag restores the previous (off) state afterwards.
        assert get_tracer() is None
