"""O(1)-evidence profiling tests: per-dequeue distributions (E5's core).

The headline assertion of the reproduction lives here: SRR's p99
per-dequeue cost stays flat (within 2x) as the flow count grows two
orders of magnitude, while a timestamp scheduler's grows.
"""

import pytest

from repro.bench.workloads import ops_profile
from repro.core.opcount import OpCounter
from repro.core.packet import Packet
from repro.core.srr import SRRScheduler
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import DequeueProfiler, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 0.50) == 5
        assert percentile(values, 0.99) == 10
        assert percentile(values, 1.0) == 10
        assert percentile(values, 0.01) == 1

    def test_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1], 0.0)


def loaded_srr(n_flows=8, packets=4):
    ops = OpCounter()
    sched = SRRScheduler(op_counter=ops)
    for fid in range(n_flows):
        sched.add_flow(fid, 1 + fid % 3)
        for seq in range(packets):
            sched.enqueue(Packet(fid, 200, seq=seq))
    ops.reset()
    return sched, ops


class TestDequeueProfiler:
    def test_profiles_each_decision(self):
        sched, ops = loaded_srr()
        profiler = DequeueProfiler(sched, ops, scheduler="srr", n=8)
        assert profiler.pull(10) == 10
        assert len(profiler.deltas) == 10
        assert all(d > 0 for d in profiler.deltas)
        assert sum(profiler.deltas) == ops.count

    def test_pull_stops_when_drained(self):
        sched, ops = loaded_srr(n_flows=2, packets=2)
        profiler = DequeueProfiler(sched, ops)
        assert profiler.pull(100) == 4

    def test_summary_keys_and_ordering(self):
        sched, ops = loaded_srr()
        profiler = DequeueProfiler(sched, ops)
        profiler.pull(16)
        s = profiler.summary()
        assert s["served"] == 16
        assert s["p50_ops"] <= s["p90_ops"] <= s["p99_ops"] <= s["worst_ops"]
        assert s["total_ops"] == sum(profiler.deltas)
        assert s["mean_ops"] == pytest.approx(s["total_ops"] / 16)

    def test_srr_exposes_scan_lengths(self):
        sched, ops = loaded_srr()
        profiler = DequeueProfiler(sched, ops)
        profiler.pull(16)
        s = profiler.summary()
        assert "worst_scan_terms" in s
        assert len(profiler.scan_deltas) == 16
        assert s["worst_scan_terms"] >= 0

    def test_histograms_land_in_registry(self):
        registry = MetricsRegistry()
        sched, ops = loaded_srr()
        profiler = DequeueProfiler(
            sched, ops, registry=registry, scheduler="srr", n=8
        )
        profiler.pull(12)
        hist = registry.get("dequeue_ops{n=8,scheduler=srr}")
        assert hist is not None and hist.count == 12
        assert hist.maximum == max(profiler.deltas)
        scan = registry.get("wss_terms{n=8,scheduler=srr}")
        assert scan is not None and scan.count == 12

    def test_non_srr_scheduler_has_no_scan_histogram(self):
        from repro.schedulers.registry import create_scheduler

        ops = OpCounter()
        sched = create_scheduler("wfq", op_counter=ops)
        sched.add_flow("f", 1)
        sched.enqueue(Packet("f", 100, seq=0))
        registry = MetricsRegistry()
        profiler = DequeueProfiler(
            sched, ops, registry=registry, scheduler="wfq", n=1
        )
        profiler.pull(1)
        assert registry.get("wss_terms{n=1,scheduler=wfq}") is None
        assert "worst_scan_terms" not in profiler.summary()


class TestO1Evidence:
    """The reproduction's empirical O(1) signature, per decision."""

    N_VALUES = (64, 512, 4096)

    def _p99(self, name, n):
        profile = ops_profile(name, n, measure=512)
        return profile["p99_ops"]

    def test_srr_p99_flat_across_two_orders_of_magnitude(self):
        p99s = [self._p99("srr", n) for n in self.N_VALUES]
        assert max(p99s) <= 2 * min(p99s), (
            f"SRR per-dequeue p99 must stay flat across N: {p99s}"
        )

    def test_wfq_p99_grows_with_n(self):
        small = self._p99("wfq", self.N_VALUES[0])
        large = self._p99("wfq", self.N_VALUES[-1])
        assert large > small, (
            f"WFQ (heap, O(log N)) p99 should grow: {small} -> {large}"
        )

    def test_srr_scan_length_bounded_by_paper_claim(self):
        # Theorem: SRR examines at most two WSS terms per packet served.
        # Measure over a saturated run at a large N.
        sched, ops = loaded_srr(n_flows=256, packets=4)
        profiler = DequeueProfiler(sched, ops)
        profiler.pull(512)
        assert max(profiler.scan_deltas) <= 2
