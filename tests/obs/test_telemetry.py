"""Tests for the telemetry bus (repro.obs.telemetry) and the dashboard."""

import json

import pytest

from repro.core.errors import ArtifactError
from repro.obs.telemetry import (
    TELEMETRY_ENV_VAR,
    TelemetryWriter,
    get_telemetry,
    read_telemetry,
    set_telemetry,
)
from repro.obs.top import collect_frames, render, summarize


@pytest.fixture(autouse=True)
def clean_bus(monkeypatch):
    monkeypatch.delenv(TELEMETRY_ENV_VAR, raising=False)
    previous = set_telemetry(None)
    yield
    set_telemetry(previous)


class TestWriter:
    def test_frames_carry_envelope_and_sequence(self, tmp_path):
        path = tmp_path / "run.jsonl"
        w = TelemetryWriter(path)
        w.frame("run_start", total=5)
        w.frame("run_end")
        w.close()
        frames = read_telemetry(path)
        assert [f["kind"] for f in frames] == ["run_start", "run_end"]
        assert [f["seq"] for f in frames] == [1, 2]
        assert frames[0]["total"] == 5
        assert all(f["pid"] == w.pid and "t" in f for f in frames)

    def test_heartbeat_rate_limited(self, tmp_path):
        w = TelemetryWriter(tmp_path / "run.jsonl", interval_s=3600)
        assert w.heartbeat(events=1) is True
        assert w.heartbeat(events=2) is False  # inside the interval
        w.close()
        frames = read_telemetry(w.path)
        assert len(frames) == 1
        assert frames[0]["events"] == 1
        assert "rss_kb" in frames[0]  # filled in by default

    def test_concurrent_writers_interleave(self, tmp_path):
        path = tmp_path / "run.jsonl"
        a, b = TelemetryWriter(path), TelemetryWriter(path)
        a.frame("sweep", done=1)
        b.frame("sweep", done=2)
        a.frame("sweep", done=3)
        a.close()
        b.close()
        assert [f["done"] for f in read_telemetry(path)] == [1, 2, 3]

    def test_env_activation_per_process(self, tmp_path, monkeypatch):
        assert get_telemetry() is None
        monkeypatch.setenv(TELEMETRY_ENV_VAR, str(tmp_path / "env.jsonl"))
        w = get_telemetry()
        assert w is not None
        assert get_telemetry() is w  # cached for this pid
        w.frame("run_start")
        w.close()
        assert read_telemetry(tmp_path / "env.jsonl")


class TestReader:
    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        line = json.dumps({"t": 1.0, "pid": 1, "kind": "heartbeat"})
        path.write_text(line + "\n" + line[: len(line) // 2])
        frames = read_telemetry(path)
        assert len(frames) == 1  # torn tail dropped silently

    def test_mid_file_garbage_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        line = json.dumps({"t": 1.0, "pid": 1, "kind": "heartbeat"})
        path.write_text("not json\n" + line + "\n")
        with pytest.raises(ArtifactError):
            read_telemetry(path)


def write_frames(path, frames):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("".join(json.dumps(f) + "\n" for f in frames))


class TestDashboard:
    def test_collect_groups_by_file_and_pid(self, tmp_path):
        tele = tmp_path / "telemetry"
        write_frames(tele / "a.jsonl", [
            {"t": 1.0, "pid": 10, "kind": "run_start"},
            {"t": 2.0, "pid": 11, "kind": "run_start"},
        ])
        write_frames(tele / "b.jsonl", [{"t": 1.0, "pid": 12, "kind": "sweep"}])
        sources = collect_frames(str(tmp_path))
        assert set(sources) == {("a.jsonl", 10), ("a.jsonl", 11),
                                ("b.jsonl", 12)}

    def test_finished_done_and_stalled(self, tmp_path):
        tele = tmp_path / "telemetry"
        write_frames(tele / "done.jsonl", [
            {"t": 0.0, "pid": 1, "kind": "run_start"},
            {"t": 5.0, "pid": 1, "kind": "run_end"},
        ])
        write_frames(tele / "hung.jsonl", [
            {"t": 0.0, "pid": 2, "kind": "heartbeat"},
        ])
        rows = summarize(collect_frames(str(tmp_path)), now=100.0,
                         stall_after=10.0)
        by_file = {r["file"]: r for r in rows}
        assert by_file["done.jsonl"]["finished"] is True
        assert by_file["done.jsonl"]["stalled"] is False
        assert by_file["hung.jsonl"]["finished"] is False
        assert by_file["hung.jsonl"]["stalled"] is True
        body = render(rows)
        assert "done" in body and "STALLED" in body

    def test_progress_rate_and_eta(self, tmp_path):
        tele = tmp_path / "telemetry"
        write_frames(tele / "sweep.jsonl", [
            {"t": 0.0, "pid": 1, "kind": "sweep", "done": 0, "total": 10},
            {"t": 5.0, "pid": 1, "kind": "sweep", "done": 5, "total": 10},
        ])
        (row,) = summarize(collect_frames(str(tmp_path)), now=5.0)
        assert row["done"] == 5 and row["total"] == 10
        assert row["eta_s"] == pytest.approx(5.0)  # 1 point/s, 5 left
        assert "5/10" in render([row])

    def test_render_empty(self):
        assert "no telemetry frames" in render([])


class TestCli:
    def test_top_once_snapshot(self, tmp_path, capsys):
        from repro.obs.__main__ import main
        tele = tmp_path / "telemetry"
        write_frames(tele / "run.jsonl", [
            {"t": 0.0, "pid": 1, "kind": "run_start"},
            {"t": 1.0, "pid": 1, "kind": "run_end"},
        ])
        assert main(["top", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "run.jsonl" in out and "done" in out

    def test_report_renders_flight_block(self, tmp_path, capsys):
        from repro.obs.__main__ import main
        artifact = tmp_path / "run.json"
        artifact.write_text(json.dumps({
            "obs": {
                "metrics": {
                    "x_total": {"type": "counter", "value": 3},
                },
                "flight": {
                    "schema": "repro.obs/flight/v1",
                    "sample_shift": 6,
                    "ops_seen": 640,
                    "recorded": 10,
                    "dropped": 0,
                    "points": 2,
                    "window": [
                        {"kind": "pull", "slot": 0, "size": 200, "ops": 2,
                         "terms": 1, "credit": 0.0, "occupancy": 1,
                         "dt": 0.01},
                    ],
                },
            },
        }))
        assert main(["report", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "Flight recorder" in out
        assert "1/64" in out
        assert "sweep points" in out
