"""Tests for the fast-core flight recorder (repro.obs.flight)."""

import pytest

from repro.fastpath import FastSRRScheduler
from repro.fastpath.netloop import run_single_bottleneck_fast
from repro.obs import flight as flight_mod
from repro.obs.flight import (
    FLIGHT_ENV_VAR,
    FlightRecorder,
    get_flight_recorder,
    set_flight_recorder,
)


@pytest.fixture(autouse=True)
def clean_recorder(monkeypatch):
    monkeypatch.delenv(FLIGHT_ENV_VAR, raising=False)
    flight_mod._reset_for_tests()
    yield
    flight_mod._reset_for_tests()


class TestRingBuffer:
    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(capacity=3)
        with pytest.raises(ValueError):
            FlightRecorder(sample_shift=-1)

    def test_wrap_at_exact_capacity(self):
        rec = FlightRecorder(capacity=4, sample_shift=0)
        for i in range(4):
            rec.record(0, i, 100, 1, 1, 0.0, 1)
        # Exactly full: nothing dropped yet, all four held in order.
        assert len(rec) == 4
        assert rec.dropped == 0
        assert [r["slot"] for r in rec.records()] == [0, 1, 2, 3]
        rec.record(1, 99, 100, 1, 1, 0.0, 1)
        # One past capacity: the oldest record is gone, newest appended.
        assert len(rec) == 4
        assert rec.dropped == 1
        assert [r["slot"] for r in rec.records()] == [1, 2, 3, 99]

    def test_window_is_newest_suffix(self):
        rec = FlightRecorder(capacity=8, sample_shift=0)
        for i in range(5):
            rec.record(0, i, 100, 0, 0, 0.0, 1)
        assert [r["slot"] for r in rec.window(2)] == [3, 4]
        assert rec.window(0) == []

    def test_record_fields_and_dt(self):
        rec = FlightRecorder(capacity=4, sample_shift=0)
        rec.now = 1.5
        rec.record(1, 3, 200, 7, 2, 4.5, 6)
        (r,) = rec.records()
        assert r == {
            "kind": "pull", "slot": 3, "size": 200, "ops": 7, "terms": 2,
            "credit": 4.5, "occupancy": 6, "dt": 1.5,
        }

    def test_pull_deltas_filters_pushes(self):
        rec = FlightRecorder(capacity=8, sample_shift=0)
        rec.record(0, 0, 100, 9, 9, 0.0, 1)   # push: excluded
        rec.record(1, 0, 100, 2, 1, 0.0, 0)
        rec.record(1, 1, 100, 3, 2, 0.0, 0)
        assert rec.pull_deltas() == ([2, 3], [1, 2])

    def test_clear_reuses_storage(self):
        rec = FlightRecorder(capacity=4, sample_shift=0)
        rec.n = 10
        rec.record(0, 0, 100, 0, 0, 0.0, 1)
        rec.clear()
        assert len(rec) == 0 and rec.n == 0 and rec.dropped == 0

    def test_snapshot_block(self):
        rec = FlightRecorder(capacity=8, sample_shift=1)
        rec.n = 6
        rec.record(0, 0, 100, 0, 0, 0.0, 1)
        rec.record(1, 0, 100, 1, 1, 0.0, 0)
        block = rec.snapshot(window=1)
        assert block["schema"] == flight_mod.FLIGHT_SCHEMA
        assert block["sample_shift"] == 1
        assert block["sample_rate"] == 2
        assert block["capacity"] == 8
        assert block["ops_seen"] == 6
        assert block["recorded"] == 2
        assert block["dropped"] == 0
        assert [r["kind"] for r in block["window"]] == ["pull"]


class TestArming:
    def test_arm_swaps_to_twin_and_disarm_restores(self):
        sched = FastSRRScheduler()
        bare = type(sched)
        rec = FlightRecorder(capacity=64, sample_shift=0)
        rec.arm(sched)
        twin = type(sched)
        assert twin is not bare
        assert twin._flight_base is bare
        assert sched._flight is rec
        FlightRecorder.disarm(sched)
        assert type(sched) is bare
        assert "_flight" not in sched.__dict__

    def test_born_as_twin_when_global_recorder_armed(self):
        rec = FlightRecorder(capacity=64, sample_shift=0)
        set_flight_recorder(rec)
        sched = FastSRRScheduler()
        assert type(sched)._flight_base is not None
        assert sched._flight is rec

    def test_shift_zero_records_every_operation(self):
        rec = FlightRecorder(capacity=64, sample_shift=0)
        set_flight_recorder(rec)
        sched = FastSRRScheduler()
        sched.add_flow("a", 1)
        slot = sched.slot_of("a")
        for _ in range(5):
            assert sched.push(slot, 100)
        served = 0
        while sched.pull() is not None:
            served += 1
        assert served == 5
        kinds = [r["kind"] for r in rec.records()]
        assert kinds.count("push") == 5
        assert kinds.count("pull") == 5
        # The trailing empty pull bumps the op counter but stores nothing.
        assert rec.n == 11

    def test_sampling_mask_keeps_one_in_rate(self):
        rec = FlightRecorder(capacity=64, sample_shift=2)  # 1 in 4
        set_flight_recorder(rec)
        sched = FastSRRScheduler()
        sched.add_flow("a", 1)
        slot = sched.slot_of("a")
        for _ in range(16):
            sched.push(slot, 100)
        assert rec.n == 16
        assert len(rec) == 4  # n = 4, 8, 12, 16

    def test_env_activation_and_authoritative_disarm(self, monkeypatch):
        monkeypatch.setenv(FLIGHT_ENV_VAR, "3")
        rec = get_flight_recorder()
        assert rec is not None and rec.sample_shift == 3
        sched = FastSRRScheduler()
        assert sched._flight is rec
        # Explicit disarm wins over a stale env var for this process.
        set_flight_recorder(None)
        assert get_flight_recorder() is None


class TestNetloopSampling:
    def run(self, **kwargs):
        return run_single_bottleneck_fast(4, 0.3, **kwargs)

    def test_armed_run_matches_recorder_off(self):
        off = self.run()
        set_flight_recorder(FlightRecorder(sample_shift=6))
        armed = self.run()
        assert armed.total_delivered == off.total_delivered
        for slot in range(len(off.delivered)):
            assert armed.delivered[slot] == off.delivered[slot]
            assert armed.mean_delay(slot) == off.mean_delay(slot)

    def test_burst_sampling_stores_both_kinds(self):
        rec = FlightRecorder(sample_shift=1)
        set_flight_recorder(rec)
        run = self.run()
        assert run.total_delivered > 0
        kinds = {r["kind"] for r in rec.records()}
        assert kinds == {"push", "pull"}
        # The burst accounting still counts every operation it skips.
        assert rec.n >= 2 * run.total_delivered

    def test_exact_mode_in_netloop(self):
        rec = FlightRecorder(capacity=1 << 15, sample_shift=0)
        set_flight_recorder(rec)
        run = self.run()
        ops, terms = rec.pull_deltas()
        assert len(ops) == run.total_delivered
        # The paper's WSS bound: at most two terms examined per packet.
        assert max(terms) <= 2
