"""Tests for the deterministic metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import (
    DELAY_BUCKETS_S,
    NULL_REGISTRY,
    OPS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    log2_buckets,
    log10_buckets,
    metric_key,
    set_registry,
)


class TestBuckets:
    def test_log2_edges(self):
        assert log2_buckets(4) == (1.0, 2.0, 4.0, 8.0, 16.0)

    def test_log10_per_decade(self):
        edges = log10_buckets(0, 1, per_decade=2)
        assert edges[0] == 1.0
        assert edges[-1] == 10.0
        assert len(edges) == 3

    def test_defaults_strictly_increasing(self):
        for table in (OPS_BUCKETS, DELAY_BUCKETS_S):
            assert all(a < b for a, b in zip(table, table[1:]))


class TestCounter:
    def test_inc_and_snapshot(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.snapshot() == {"type": "counter", "value": 6}

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge(b.snapshot())
        assert a.value == 7


class TestGauge:
    def test_set_and_set_max(self):
        g = Gauge()
        g.set(5.0)
        g.set_max(3.0)
        assert g.value == 5.0
        g.set_max(9.0)
        assert g.value == 9.0

    def test_merge_keeps_max(self):
        a, b = Gauge(), Gauge()
        a.set(2.0)
        b.set(7.0)
        a.merge(b.snapshot())
        assert a.value == 7.0
        a.merge(Gauge().snapshot())  # merging a zero gauge keeps the max
        assert a.value == 7.0


class TestHistogram:
    def test_bucket_placement_inclusive_right_edge(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (1, 2, 2, 3, 4, 100):
            h.observe(v)
        # (..,1] (1,2] (2,4] overflow
        assert h.buckets == [1, 2, 2, 1]
        assert h.count == 6
        assert h.minimum == 1 and h.maximum == 100

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_quantile_is_bucket_upper_bound_clamped_to_max(self):
        h = Histogram((1.0, 2.0, 4.0, 8.0))
        for v in (1, 1, 1, 3):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        # The p100 bucket edge is 4.0 but the exact max (3) clamps it.
        assert h.quantile(1.0) == 3
        assert h.mean == pytest.approx(1.5)

    def test_quantile_overflow_bucket_returns_exact_max(self):
        h = Histogram((1.0, 2.0))
        h.observe(500)
        assert h.quantile(0.99) == 500

    def test_quantile_empty_and_bad_q(self):
        h = Histogram((1.0,))
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_merge_adds_buckets_and_tracks_extremes(self):
        a, b = Histogram((1.0, 2.0)), Histogram((1.0, 2.0))
        a.observe(1)
        b.observe(2)
        b.observe(9)
        a.merge(b.snapshot())
        assert a.count == 3
        assert a.buckets == [1, 1, 1]
        assert a.minimum == 1 and a.maximum == 9

    def test_merge_rejects_mismatched_bounds(self):
        a, b = Histogram((1.0, 2.0)), Histogram((1.0, 4.0))
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_merge_disjoint_buckets(self):
        # Sweep workers can each see a disjoint value range; the merged
        # histogram must cover the union with the global extremes.
        a, b = Histogram((1.0, 4.0, 16.0)), Histogram((1.0, 4.0, 16.0))
        a.observe(1)    # lowest bucket only
        b.observe(99)   # overflow bucket only
        a.merge(b.snapshot())
        assert a.count == 2
        assert a.buckets == [1, 0, 0, 1]
        assert a.minimum == 1 and a.maximum == 99
        assert a.quantile(0.99) == 99  # overflow reads the exact max

    def test_merge_empty_histogram_keeps_none_extremes(self):
        a = Histogram((1.0,))
        a.merge(Histogram((1.0,)).snapshot())
        assert a.count == 0 and a.minimum is None and a.maximum is None


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("x", {}) == "x"

    def test_labels_sorted(self):
        assert (
            metric_key("dequeue_ops", {"scheduler": "srr", "n": 64})
            == "dequeue_ops{n=64,scheduler=srr}"
        )


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        r = MetricsRegistry()
        a = r.counter("drops", port="p0")
        b = r.counter("drops", port="p0")
        assert a is b
        assert len(r) == 1

    def test_type_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")
        with pytest.raises(TypeError):
            r.histogram("x")

    def test_snapshot_sorted_and_json_serialisable(self):
        r = MetricsRegistry()
        r.counter("zeta").inc()
        r.histogram("alpha", (1.0, 2.0)).observe(1)
        snap = r.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise

    def test_merge_snapshot_creates_and_adds(self):
        child = MetricsRegistry()
        child.counter("events").inc(3)
        child.gauge("depth").set(5.0)
        child.histogram("ops", (1.0, 2.0)).observe(2)
        parent = MetricsRegistry()
        parent.merge_snapshot(child.snapshot())
        parent.merge_snapshot(child.snapshot())
        assert parent.get("events").value == 6
        assert parent.get("depth").value == 5.0
        assert parent.get("ops").count == 2

    def test_merge_order_independent(self):
        def child(seed):
            r = MetricsRegistry()
            r.counter("c").inc(seed)
            r.gauge("g").set(seed)
            h = r.histogram("h", (1.0, 4.0, 16.0))
            h.observe(seed)
            return r.snapshot()

        snaps = [child(s) for s in (1, 5, 9)]
        ab = MetricsRegistry()
        for s in snaps:
            ab.merge_snapshot(s)
        ba = MetricsRegistry()
        for s in reversed(snaps):
            ba.merge_snapshot(s)
        assert ab.snapshot() == ba.snapshot()

    def test_merge_snapshot_type_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.merge_snapshot({"x": {"type": "gauge", "value": 1.0}})

    def test_items_sorted_and_clear(self):
        r = MetricsRegistry()
        r.counter("b")
        r.counter("a")
        assert [k for k, _ in r.items()] == ["a", "b"]
        r.clear()
        assert len(r) == 0


class TestNullRegistry:
    def test_shared_noop_singletons(self):
        r = NullRegistry()
        assert r.counter("a") is NULL_REGISTRY.counter("b")
        c = r.counter("x", port="p")
        c.inc(100)
        assert c.value == 0
        g = r.gauge("y")
        g.set(3.0)
        g.set_max(9.0)
        assert g.value == 0.0
        h = r.histogram("z")
        h.observe(42)
        assert h.count == 0

    def test_disabled_and_empty(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True
        assert NULL_REGISTRY.snapshot() == {}
        NULL_REGISTRY.merge_snapshot({"x": {"type": "counter", "value": 1}})
        assert NULL_REGISTRY.snapshot() == {}


class TestActiveRegistry:
    def test_defaults_to_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_set_returns_previous_and_none_disables(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
            assert set_registry(None) is mine
            assert get_registry() is NULL_REGISTRY
        finally:
            set_registry(previous)
