"""Tests for the artifact metrics summarizer (python -m repro.obs report)."""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import load_metrics_block, render_metrics, split_key


class TestSplitKey:
    def test_plain_name(self):
        assert split_key("events") == ("events", {})

    def test_labels(self):
        name, labels = split_key("dequeue_ops{n=64,scheduler=srr}")
        assert name == "dequeue_ops"
        assert labels == {"n": "64", "scheduler": "srr"}


def sample_metrics():
    r = MetricsRegistry()
    r.counter("port_drops", port="a->b").inc(3)
    r.gauge("heap_depth").set(17)
    h = r.histogram("dequeue_ops", (1.0, 2.0, 4.0), scheduler="srr", n=64)
    for v in (1, 2, 2, 3):
        h.observe(v)
    return r.snapshot()


def write_artifact(tmp_path, obs):
    path = tmp_path / "run.json"
    path.write_text(json.dumps({"experiment": "e5", "obs": obs}))
    return str(path)


class TestLoadMetricsBlock:
    def test_loads(self, tmp_path):
        path = write_artifact(tmp_path, {"metrics": sample_metrics()})
        block = load_metrics_block(path)
        assert "heap_depth" in block

    def test_missing_block_raises(self, tmp_path):
        path = write_artifact(tmp_path, {})
        with pytest.raises(KeyError):
            load_metrics_block(path)


class TestRenderMetrics:
    def test_sections(self):
        text = render_metrics(sample_metrics())
        assert "Counters and gauges" in text
        assert "Histograms" in text
        assert "port_drops" in text and "dequeue_ops" in text
        assert "n=64,scheduler=srr" in text

    def test_family_filter(self):
        text = render_metrics(sample_metrics(), family="dequeue_ops")
        assert "dequeue_ops" in text
        assert "port_drops" not in text

    def test_no_match(self):
        assert render_metrics({}, family="nope") == "(no matching metrics)"


class TestCli:
    def test_report_renders_artifact(self, tmp_path, capsys):
        path = write_artifact(tmp_path, {"metrics": sample_metrics()})
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert f"== {path}" in out
        assert "dequeue_ops" in out

    def test_report_errors_on_missing_block(self, tmp_path, capsys):
        path = write_artifact(tmp_path, {})
        assert main(["report", path]) == 1
        assert "no observability metrics block" in capsys.readouterr().err

    def test_report_on_real_e5_artifact(self, tmp_path, capsys):
        from repro.bench.runner import run_config
        from repro.harness import write_artifact as write_run_artifact

        result = run_config(
            "e5", scale="quick", quiet=True,
            overrides={"n_values": (16,), "measure": 64,
                       "schedulers": ("srr",), "time_it": False},
        )
        path = write_run_artifact(result, results_dir=str(tmp_path))
        assert main(["report", str(path), "--family", "dequeue_ops"]) == 0
        out = capsys.readouterr().out
        assert "dequeue_ops" in out
        assert "scheduler=srr" in out
