"""Shrinking: failing scenarios reduce to small, still-failing repros."""

import pytest

from repro.conformance.oracles import check_scenario
from repro.conformance.runner import variant_by_name
from repro.conformance.scenario import FlowDef, Scenario, generate_scenario
from repro.conformance.shrink import failure_families, shrink
from repro.schedulers.drr import DRRScheduler
from repro.schedulers.registry import register_scheduler

from .test_oracles import _TruncatingDRR


@pytest.fixture
def broken_drr():
    register_scheduler("drr", _TruncatingDRR)
    yield variant_by_name("drr")
    register_scheduler("drr", DRRScheduler)


def _failing_fractional_seed(variant, max_seed=400):
    for seed in range(max_seed):
        scenario = generate_scenario(seed, quick=True)
        if not any(f.frac_weight < 1.0 / scenario.quantum
                   for f in scenario.flows):
            continue
        violations = check_scenario(variant, scenario,
                                    op_budget=100_000)
        if violations:
            return scenario, violations
    raise AssertionError("no failing fractional seed found")


class TestShrink:
    def test_truncation_bug_shrinks_to_tiny_repro(self, broken_drr):
        scenario, violations = _failing_fractional_seed(broken_drr)
        small, small_violations = shrink(broken_drr, scenario, violations)
        # Acceptance criterion: the canonical DRR truncation repro is at
        # most 3 flows (one starved fractional flow is enough in theory).
        assert len(small.flows) <= 3
        assert len(small.ops) <= len(scenario.ops)
        assert small_violations
        assert failure_families(small_violations) & \
            failure_families(violations)

    def test_shrunk_repro_still_fails_at_full_budget(self, broken_drr):
        scenario, violations = _failing_fractional_seed(broken_drr)
        small, _ = shrink(broken_drr, scenario, violations)
        assert check_scenario(broken_drr, small)

    def test_passing_scenario_is_returned_unchanged(self):
        variant = variant_by_name("srr")
        scenario = generate_scenario(0, quick=True)
        small, violations = shrink(variant, scenario, [])
        assert small == scenario
        assert violations == []

    def test_shrink_never_drops_last_flow(self, broken_drr):
        flows = (FlowDef("thin", 1, 0.0004),)
        ops = (("enq", 0, 200), ("enq", 0, 200))
        scenario = Scenario(9, flows, ops)
        violations = check_scenario(broken_drr, scenario,
                                    op_budget=100_000)
        assert violations
        small, _ = shrink(broken_drr, scenario, violations)
        assert len(small.flows) == 1
