"""Oracle families: clean schedulers pass; planted bugs are caught."""

import pytest

from repro.conformance.oracles import (
    check_conservation,
    check_fluid_lag,
    check_metamorphic,
    check_scenario,
    fluid_lag,
)
from repro.conformance.runner import (
    VARIANTS,
    Departure,
    ScenarioRun,
    run_scenario,
    variant_by_name,
)
from repro.conformance.scenario import FlowDef, Scenario, generate_scenario
from repro.schedulers.drr import DRRScheduler
from repro.schedulers.registry import register_scheduler


@pytest.fixture
def restore_drr():
    yield
    register_scheduler("drr", DRRScheduler)


class _TruncatingDRR(DRRScheduler):
    """DRR with the historical credit-truncation bug re-planted."""

    def dequeue(self):
        ops = self._ops
        active = self._active
        while active:
            ops.bump()
            flow = active[0]
            if not self._head_charged:
                flow.deficit += int(flow.weight * self.quantum)
                self._head_charged = True
            if flow.head_size() <= flow.deficit:
                packet = flow.take()
                flow.deficit -= packet.size
                if not flow.queue:
                    flow.deficit = 0
                    active.popleft()
                    self._active_set.discard(flow.flow_id)
                    self._head_charged = False
                return self._account_departure(packet)
            active.rotate(-1)
            self._head_charged = False
        return None


def _fractional_scenario():
    flows = (FlowDef("fat", 4, 4.0), FlowDef("thin", 1, 0.0004))
    ops = tuple(("enq", i, 200) for i in (0, 1, 0, 0, 1, 0))
    return Scenario(1, flows, ops)


class TestConservationOracle:
    @pytest.mark.parametrize("variant", VARIANTS(),
                             ids=lambda v: v.name)
    def test_clean_schedulers_pass(self, variant):
        for seed in range(6):
            scenario = generate_scenario(seed, quick=True)
            run = run_scenario(variant, scenario)
            assert check_conservation(variant, scenario, run) == []

    def test_livelock_is_caught(self, restore_drr):
        register_scheduler("drr", _TruncatingDRR)
        variant = variant_by_name("drr")
        scenario = _fractional_scenario()
        run = run_scenario(variant, scenario, op_budget=50_000)
        violations = check_conservation(variant, scenario, run)
        assert [v.check for v in violations] == ["livelock"]

    def test_phantom_service_is_caught(self):
        variant = variant_by_name("fifo")
        scenario = _fractional_scenario()
        run = run_scenario(variant, scenario)
        run.departures.append(Departure(0, 200, uid=10**9))
        checks = {v.check for v in
                  check_conservation(variant, scenario, run)}
        assert "phantom_service" in checks

    def test_duplicate_service_is_caught(self):
        variant = variant_by_name("fifo")
        scenario = _fractional_scenario()
        run = run_scenario(variant, scenario)
        run.departures.append(run.departures[-1])
        run.dequeued_bytes += run.departures[-1].size
        checks = {v.check for v in
                  check_conservation(variant, scenario, run)}
        assert "duplicate_service" in checks
        assert "byte_conservation" in checks

    def test_fifo_order_is_checked(self):
        variant = variant_by_name("fifo")
        scenario = _fractional_scenario()
        run = run_scenario(variant, scenario)
        flow0 = [d for d in run.departures if d.flow_index == 0]
        assert len(flow0) >= 2
        i = run.departures.index(flow0[0])
        j = run.departures.index(flow0[1])
        run.departures[i], run.departures[j] = (run.departures[j],
                                                run.departures[i])
        checks = {v.check for v in
                  check_conservation(variant, scenario, run)}
        assert "fifo_order" in checks


class TestLagOracle:
    @pytest.mark.parametrize("variant", VARIANTS(),
                             ids=lambda v: v.name)
    def test_clean_schedulers_within_bounds(self, variant):
        for seed in range(6):
            scenario = generate_scenario(seed, quick=True)
            run = run_scenario(variant, scenario)
            assert check_fluid_lag(variant, scenario, run) == []

    def test_fluid_reference_is_exact_waterfilling(self):
        # Two flows, weights 3:1, 4 packets each of 100B. GPS serves them
        # 3:1, so when the real system serves flow 1 first, flow 0 lags by
        # 75B after the first departure.
        run = ScenarioRun(variant="x")
        run.drain_backlog_bytes = {0: 400, 1: 400}
        run.final_drain_start = 0
        run.departures = [Departure(1, 100, uid=i) for i in range(4)] + \
            [Departure(0, 100, uid=4 + i) for i in range(4)]
        lags = fluid_lag(run, {0: 3.0, 1: 1.0}, "bytes")
        # Flow 0's fluid share of the first 400B transmitted is 300B
        # while flow 0 has received no real service: max lag 300.
        assert lags[0] == pytest.approx(300.0)
        assert lags[1] == pytest.approx(0.0)

    def test_starvation_breaks_the_bound(self, restore_drr):
        register_scheduler("drr", _TruncatingDRR)
        variant = variant_by_name("drr")
        # Thin flow gets int(0.2 * 1500) = 300B per visit truncated from
        # 300.0 — fine; use 0.0004 so credit truncates to 0 but load the
        # fat flow heavily so the run ends by op budget on the thin tail.
        flows = (FlowDef("fat", 4, 4.0), FlowDef("thin", 1, 0.0004))
        ops = tuple(("enq", 0, 200) for _ in range(40)) + \
            (("enq", 1, 200),) * 3
        scenario = Scenario(2, flows, ops)
        run = run_scenario(variant, scenario, op_budget=50_000)
        violations = check_conservation(variant, scenario, run) + \
            check_fluid_lag(variant, scenario, run)
        assert violations  # starves -> livelock once fat drains


class TestMetamorphicOracle:
    @pytest.mark.parametrize("variant", VARIANTS(),
                             ids=lambda v: v.name)
    def test_clean_schedulers_invariant(self, variant):
        for seed in range(4):
            scenario = generate_scenario(seed, quick=True)
            run = run_scenario(variant, scenario)
            assert check_metamorphic(variant, scenario, run) == []

    def test_relabel_catches_id_dependence(self, restore_drr):
        class IdOrderedDRR(DRRScheduler):
            # Serves flows in sorted-flow-id order: relabeling changes
            # the service order, which the oracle must flag.
            def dequeue(self):
                backlogged = sorted(
                    (f for f in self._flows.values() if f.queue),
                    key=lambda f: str(f.flow_id),
                )
                if not backlogged:
                    return None
                return self._account_departure(backlogged[0].take())

        register_scheduler("drr", IdOrderedDRR)
        variant = variant_by_name("drr")
        flows = (FlowDef("a", 1, 1.0), FlowDef("b", 1, 1.0))
        ops = (("enq", 0, 100), ("enq", 1, 100),
               ("enq", 0, 100), ("enq", 1, 100))
        scenario = Scenario(3, flows, ops)
        run = run_scenario(variant, scenario)
        checks = {v.check for v in
                  check_metamorphic(variant, scenario, run)}
        assert "relabel" in checks


class TestCheckScenario:
    def test_accepts_precomputed_run(self):
        variant = variant_by_name("srr")
        scenario = generate_scenario(1, quick=True)
        run = run_scenario(variant, scenario)
        assert check_scenario(variant, scenario, run=run) == []

    def test_engine_equivalence_on_clean_scheduler(self):
        from repro.conformance.oracles import check_engine_equivalence

        variant = variant_by_name("drr")
        scenario = generate_scenario(2, quick=True)
        assert check_engine_equivalence(variant, scenario) == []


class TestBoundsOracle:
    """Family 4: network-calculus delay-bound certification."""

    @pytest.mark.parametrize("name", ["srr", "drr", "wrr", "iwrr"])
    @pytest.mark.parametrize("engine", ["heap", "calendar"])
    def test_clean_disciplines_certify(self, name, engine):
        from repro.conformance.oracles import check_bounds

        variant = variant_by_name(name)
        for seed in range(3):
            scenario = generate_scenario(seed, quick=True)
            assert check_bounds(variant, scenario, engine=engine) == []

    def test_uncertified_disciplines_are_exempt(self):
        from repro.conformance.oracles import check_bounds

        scenario = generate_scenario(0, quick=True)
        for name in ("rr", "wfq"):
            variant = variant_by_name(name)
            assert check_bounds(variant, scenario) == []

    def test_starved_flow_is_flagged(self, restore_drr):
        from repro.conformance.oracles import check_bounds

        class FirstFlowOnlyDRR(DRRScheduler):
            # Serves only the first-registered flow: everyone else
            # starves, which the oracle must refuse to certify.
            def dequeue(self):
                first = next(iter(self._flows.values()), None)
                if first is None or not first.queue:
                    return None
                return self._account_departure(first.take())

        register_scheduler("drr", FirstFlowOnlyDRR)
        variant = variant_by_name("drr")
        flows = (FlowDef("a", 2, 2.0), FlowDef("b", 1, 1.0))
        scenario = Scenario(7, flows, (("enq", 0, 200), ("enq", 1, 200)))
        checks = {v.check for v in check_bounds(variant, scenario)}
        assert checks & {"no_service", "delay_bound"}

    def test_check_scenario_wires_bounds_family(self):
        variant = variant_by_name("iwrr")
        scenario = generate_scenario(5, quick=True)
        violations = check_scenario(
            variant, scenario,
            families=("conservation", "lag", "metamorphic", "bounds"),
            bounds_engines=("heap", "calendar"),
        )
        assert violations == []

    def test_certification_records_are_sound(self):
        from repro.conformance.oracles import bounds_certification_run

        records = bounds_certification_run(
            "iwrr", [("a", 4.0), ("b", 2.0), ("c", 1.0)],
        )
        assert [r["flow_id"] for r in records] == ["a", "b", "c"]
        for rec in records:
            assert rec["delivered"] > 0
            assert rec["observed_s"] <= rec["bound_s"]
            assert 0 < rec["ratio"] <= 1.0
