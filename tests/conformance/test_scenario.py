"""Scenario generation: determinism, JSON round-trip, structural edits."""

import pytest

from repro.conformance.scenario import (
    FlowDef,
    Scenario,
    generate_scenario,
)
from repro.core import ConfigurationError


class TestGenerator:
    def test_pure_function_of_seed(self):
        for seed in range(20):
            assert generate_scenario(seed) == generate_scenario(seed)
            assert generate_scenario(seed, quick=True) == \
                generate_scenario(seed, quick=True)

    def test_seeds_differ(self):
        scenarios = {generate_scenario(s).ops for s in range(20)}
        assert len(scenarios) > 15

    def test_quick_caps_shape(self):
        for seed in range(50):
            sc = generate_scenario(seed, quick=True)
            assert 1 <= len(sc.flows) <= 4

    def test_every_flow_backlogged_at_warmup(self):
        for seed in range(30):
            sc = generate_scenario(seed)
            enq_flows = {op[1] for op in sc.ops if op[0] == "enq"}
            assert enq_flows == set(range(len(sc.flows)))

    def test_quantum_covers_max_packet(self):
        for seed in range(50):
            sc = generate_scenario(seed)
            assert sc.max_packet <= sc.quantum

    def test_churned_flows_rejoin_before_final_drain(self):
        # Membership at the end must include every flow: the lag oracle
        # assumes the final drain covers the full flow set.
        for seed in range(60):
            sc = generate_scenario(seed)
            out = set()
            for op in sc.ops:
                if op[0] == "leave":
                    out.add(op[1])
                elif op[0] == "join":
                    out.discard(op[1])
            assert not out


class TestRoundTrip:
    def test_json_round_trip(self):
        for seed in range(10):
            sc = generate_scenario(seed)
            assert Scenario.from_json_dict(sc.to_json_dict()) == sc

    def test_rejects_unknown_schema(self):
        data = generate_scenario(0).to_json_dict()
        data["schema"] = "something/else"
        with pytest.raises(ConfigurationError):
            Scenario.from_json_dict(data)


class TestStructuralEdits:
    def _scenario(self):
        flows = (FlowDef("a", 1, 1.0), FlowDef("b", 2, 2.0),
                 FlowDef("c", 3, 3.0))
        ops = (("enq", 0, 100), ("enq", 1, 200), ("leave", 2),
               ("deq",), ("enq", 2, 300), ("join", 2))
        return Scenario(7, flows, ops)

    def test_without_flow_remaps_indices(self):
        sc = self._scenario().without_flow(1)
        assert [f.flow_id for f in sc.flows] == ["a", "c"]
        # Ops referencing flow 1 are gone; flow 2's index shifted to 1.
        assert sc.ops == (("enq", 0, 100), ("leave", 1), ("deq",),
                          ("enq", 1, 300), ("join", 1))

    def test_with_weights_preserves_ids(self):
        sc = self._scenario().with_weights([5, 6, 7], [0.5, 0.6, 0.7])
        assert [f.weight for f in sc.flows] == [5, 6, 7]
        assert [f.frac_weight for f in sc.flows] == [0.5, 0.6, 0.7]
        assert [f.flow_id for f in sc.flows] == ["a", "b", "c"]

    def test_with_ops(self):
        sc = self._scenario().with_ops((("deq",),))
        assert sc.ops == (("deq",),)
        assert sc.flows == self._scenario().flows
