"""Repro artifacts, the committed corpus, and the CLI entry point."""

import json

import pytest

from repro.conformance.cli import check_seed, main
from repro.conformance.corpus import (
    corpus_seeds,
    load_repro_artifact,
    write_repro_artifact,
)
from repro.conformance.oracles import Violation, check_scenario
from repro.conformance.runner import VARIANTS, variant_by_name
from repro.conformance.scenario import generate_scenario
from repro.core import ArtifactError
from repro.schedulers.drr import DRRScheduler
from repro.schedulers.registry import register_scheduler

from .test_oracles import _TruncatingDRR


class TestReproArtifacts:
    def _violation(self):
        return Violation("conservation", "livelock", "drr", "spin", {})

    def test_write_and_load_round_trip(self, tmp_path):
        scenario = generate_scenario(3, quick=True)
        path = write_repro_artifact(
            "srr:deficit", scenario, [self._violation()],
            results_dir=tmp_path,
        )
        assert path.exists()
        repro = load_repro_artifact(path)
        assert repro["variant"] == "srr:deficit"
        assert repro["scenario"] == scenario
        assert repro["violations"][0]["check"] == "livelock"

    def test_collisions_get_fresh_names(self, tmp_path):
        scenario = generate_scenario(3, quick=True)
        paths = {
            write_repro_artifact("drr", scenario, [self._violation()],
                                 results_dir=tmp_path)
            for _ in range(3)
        }
        assert len(paths) == 3

    def test_load_rejects_truncated_file(self, tmp_path):
        bad = tmp_path / "repro-x-0.json"
        bad.write_text('{"schema": "repro.conformance/repro/v1", "var')
        with pytest.raises(ArtifactError):
            load_repro_artifact(bad)


class TestCorpus:
    def test_committed_corpus_is_nonempty_and_sorted(self):
        seeds = corpus_seeds()
        assert seeds == sorted(set(seeds))
        assert len(seeds) >= 20

    def test_corpus_replays_clean(self):
        # The PR-blocking property: every corpus seed passes every oracle
        # on every variant. Checked over a subset here (full replay runs
        # in CI via `python -m repro.conformance --corpus`).
        for seed in corpus_seeds()[:6]:
            scenario = generate_scenario(seed, quick=True)
            for variant in VARIANTS():
                assert check_scenario(variant, scenario) == [], (
                    seed, variant.name,
                )


class TestCheckSeed:
    def test_digest_is_deterministic(self):
        a = check_seed(5, quick=True)
        b = check_seed(5, quick=True)
        assert a == b
        assert a["violations"] == []

    def test_variant_subset(self):
        record = check_seed(5, quick=True, variant_names=["fifo"])
        assert record["violations"] == []


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        rc = main(["--seeds", "3", "--quick", "--engine-every", "0",
                   "--results-dir", str(tmp_path), "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert summary["violations"] == 0
        assert summary["failing_seeds"] == []

    def test_jobs_do_not_change_the_digest(self, tmp_path, capsys):
        digests = []
        for jobs in ("1", "2"):
            main(["--seeds", "6", "--quick", "--jobs", jobs,
                  "--engine-every", "0", "--results-dir", str(tmp_path),
                  "--json"])
            digests.append(json.loads(capsys.readouterr().out)["digest"])
        assert digests[0] == digests[1]

    def test_failing_run_writes_shrunk_artifact(self, tmp_path, capsys):
        register_scheduler("drr", _TruncatingDRR)
        try:
            rc = main(["--seeds", "40", "--quick", "--variants", "drr",
                       "--engine-every", "0",
                       "--results-dir", str(tmp_path), "--json"])
        finally:
            register_scheduler("drr", DRRScheduler)
        summary = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert summary["violations"] > 0
        assert summary["artifacts"]
        repro = load_repro_artifact(summary["artifacts"][0])
        assert repro["variant"] == "drr"
        assert len(repro["scenario"].flows) <= 3

    def test_replay_of_written_artifact(self, tmp_path, capsys):
        register_scheduler("drr", _TruncatingDRR)
        try:
            main(["--seeds", "40", "--quick", "--variants", "drr",
                  "--engine-every", "0", "--results-dir", str(tmp_path),
                  "--json"])
            summary = json.loads(capsys.readouterr().out)
            artifact = summary["artifacts"][0]
            rc = main(["--replay", artifact, "--json"])
            replay = json.loads(capsys.readouterr().out)
            assert rc == 1
            assert replay["violations"]
        finally:
            register_scheduler("drr", DRRScheduler)
        # With the fix back in place the same artifact replays clean.
        rc = main(["--replay", artifact, "--json"])
        replay = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert replay["violations"] == []

    def test_corpus_mode_smoke(self, tmp_path, monkeypatch, capsys):
        import repro.conformance.cli as cli_mod

        monkeypatch.setattr(cli_mod, "corpus_seeds", lambda: [0, 1])
        rc = main(["--corpus", "--quick", "--engine-every", "0",
                   "--results-dir", str(tmp_path), "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert summary["seeds"] == 2

    def test_unknown_variant_fails_fast(self, tmp_path):
        from repro.core import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["--seeds", "1", "--variants", "nope",
                  "--results-dir", str(tmp_path)])
