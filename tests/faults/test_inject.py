"""FaultInjector behaviour against a live network (repro.faults.inject)."""

import pytest

from repro.core import ReproError
from repro.faults import (
    FAULT_FLOW,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    build_fault_plan,
)
from repro.net import CBRSource, Network
from repro.obs.metrics import MetricsRegistry


def make_net(scheduler="srr", **kw):
    net = Network(default_scheduler=scheduler, default_scheduler_kwargs=kw)
    for n in ("a", "r", "b"):
        net.add_node(n)
    net.add_link("a", "r", rate_bps=10e6, delay=0.0001)
    net.add_link("r", "b", rate_bps=1e6, delay=0.0001)
    net.add_flow("f1", "a", "b", weight=1)
    net.attach_source("f1", CBRSource(200_000, packet_size=200))
    return net


def plan_of(*events):
    return FaultPlan(seed=0, duration=1.0, events=tuple(events))


class TestFiring:
    def test_link_flap_parks_then_resumes(self):
        net = make_net()
        inj = FaultInjector(net, plan_of(
            FaultEvent(0.2, "link_down", (("src", "r"), ("dst", "b"))),
            FaultEvent(0.4, "link_up", (("src", "r"), ("dst", "b"))),
        ))
        assert inj.install() == 2
        net.run(until=1.0)
        assert [kind for _, kind in inj.fired] == ["link_down", "link_up"]
        # Parked traffic drains after the link returns.
        record = net.sinks.flow("f1")
        assert any(r.delivered_at > 0.4 for r in record.records)

    def test_flow_churn_installs_and_removes(self):
        net = make_net()
        inj = FaultInjector(net, plan_of(
            FaultEvent(0.1, "flow_join",
                       (("flow", "churn-0"), ("src", "a"), ("dst", "b"),
                        ("weight", 2), ("rate_bps", 100_000))),
            FaultEvent(0.6, "flow_leave", (("flow", "churn-0"),)),
        ))
        inj.install()
        net.run(until=1.0)
        assert [kind for _, kind in inj.fired] == ["flow_join", "flow_leave"]
        assert "churn-0" not in net.flows
        assert not net.port("r", "b").scheduler.has_flow("churn-0")
        # The churned flow actually moved traffic while alive.
        assert net.sinks.flow("churn-0").packets > 0

    def test_leave_without_join_is_skipped_not_fatal(self):
        net = make_net()
        inj = FaultInjector(net, plan_of(
            FaultEvent(0.1, "flow_leave", (("flow", "nope"),)),
        ))
        inj.install()
        net.run(until=0.5)
        assert inj.fired == [(0.1, "flow_leave:skipped")]

    def test_burst_and_malformed_need_fault_route(self):
        net = make_net()
        inj = FaultInjector(net, plan_of(
            FaultEvent(0.1, "burst", (("node", "a"), ("count", 4))),
        ))
        with pytest.raises(ReproError):
            inj.install()

    def test_burst_traffic_flows_on_carrier(self):
        net = make_net()
        inj = FaultInjector(
            net,
            plan_of(FaultEvent(
                0.1, "burst",
                (("node", "a"), ("count", 8), ("size", 200)),
            )),
            fault_route=("a", "b"),
        )
        inj.install()
        net.run(until=1.0)
        assert net.sinks.flow(FAULT_FLOW).packets > 0

    def test_malformed_oversize_dropped_at_port(self):
        net = make_net()
        net.port("r", "b").max_packet_bytes = 500
        registry = MetricsRegistry()
        inj = FaultInjector(
            net,
            plan_of(FaultEvent(
                0.1, "malformed",
                (("node", "r"), ("variant", "oversize"), ("size", 1600)),
            )),
            fault_route=("a", "b"),
            registry=registry,
        )
        inj.install()
        net.run(until=0.5)
        assert registry.counter("fault_malformed_total").value == 1
        # The oversize packet never reached the sink.
        sizes = [r.size for r in net.sinks.flow(FAULT_FLOW).records]
        assert 1600 not in sizes

    def test_malformed_unknown_flow_dropped_not_crash(self):
        net = make_net()
        inj = FaultInjector(
            net,
            plan_of(FaultEvent(
                0.1, "malformed",
                (("node", "a"), ("variant", "unknown_flow"), ("size", 200)),
            )),
            fault_route=("a", "b"),
        )
        inj.install()
        net.run(until=0.5)  # must not raise UnknownFlowError
        assert [kind for _, kind in inj.fired] == ["malformed"]

    def test_install_is_idempotent(self):
        net = make_net()
        inj = FaultInjector(net, plan_of(
            FaultEvent(0.2, "link_down", (("src", "r"), ("dst", "b"))),
        ))
        assert inj.install() == 1
        assert inj.install() == 0
        net.run(until=0.5)
        assert len(inj.fired) == 1


class TestEndToEnd:
    def test_full_plan_replay_is_deterministic(self):
        spec = FaultSpec(
            churn_rate_hz=3.0, flap_rate_hz=2.0,
            burst_rate_hz=2.0, malformed_rate_hz=2.0,
        )

        def run_once():
            net = make_net()
            plan = build_fault_plan(
                spec, seed=11, duration=2.0,
                links=[("r", "b")], churn_route=("a", "b"), burst_node="a",
            )
            inj = FaultInjector(net, plan, fault_route=("a", "b"))
            inj.install()
            net.run(until=2.0)
            return plan.signature(), inj.fired, net.sinks.flow("f1").packets

        assert run_once() == run_once()
