"""InvariantGuard: seeded corruption is caught, clean runs are silent,
and an unguarded scheduler pays nothing (repro.faults.invariants)."""

import pytest

from repro.core import InvariantViolation, OpCounter, Packet, SRRScheduler
from repro.faults import InvariantGuard, attach_guard, guard_network
from repro.net import CBRSource, Network
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.schedulers import DRRScheduler, WFQScheduler


def load(sched, flows, packets_each, size=100):
    for fid in flows:
        for i in range(packets_each):
            sched.enqueue(Packet(fid, size, seq=i))


def make_srr(**kw):
    s = SRRScheduler(**kw)
    s.add_flow("f1", 1)
    s.add_flow("f2", 2)
    s.add_flow("f3", 4)
    return s


def make_drr():
    s = DRRScheduler(quantum=100)
    for fid in ("f1", "f2"):
        s.add_flow(fid, 1)
    return s


class TestCleanRuns:
    @pytest.mark.parametrize("factory", [make_srr, make_drr])
    def test_no_violations_on_honest_scheduler(self, factory):
        sched = factory()
        guard = attach_guard(sched, every=1)
        load(sched, ["f1", "f2"], 20)
        while sched.dequeue() is not None:
            pass
        assert guard.violations == []
        assert guard.checks_run > 0
        guard.detach()

    def test_counters_exported(self):
        registry = MetricsRegistry()
        sched = make_srr()
        guard = attach_guard(sched, every=1, registry=registry)
        load(sched, ["f1"], 5)
        while sched.dequeue() is not None:
            pass
        checks = registry.counter(
            "invariant_checks_total", scheduler="srr"
        ).value
        assert checks == guard.checks_run > 0
        assert registry.counter(
            "invariant_violations_total", scheduler="srr"
        ).value == 0
        guard.detach()


class TestCorruptionCaught:
    def test_srr_matrix_corruption(self):
        sched = make_srr()
        guard = attach_guard(sched, every=1)
        load(sched, ["f1", "f2", "f3"], 4)
        sched.dequeue()
        # Rip a backlogged flow out of the matrix behind SRR's back.
        sched.matrix.remove(sched._flows["f2"])
        with pytest.raises(InvariantViolation) as info:
            for _ in range(10):
                sched.dequeue()
        assert info.value.scheduler == "srr"
        assert info.value.check in (
            "srr_flow_linkage", "srr_matrix_links", "work_conservation",
        )
        guard.detach()

    def test_drr_deficit_corruption(self):
        sched = make_drr()
        guard = attach_guard(sched, every=1)
        load(sched, ["f1", "f2"], 4)
        sched.dequeue()
        sched._flows["f2"].deficit = 10**9  # forged credit
        with pytest.raises(InvariantViolation) as info:
            for _ in range(10):
                sched.dequeue()
        assert info.value.check == "drr_deficit_bound"
        assert info.value.details["flow"] == "f2"
        guard.detach()

    def test_drr_idle_credit_corruption(self):
        sched = make_drr()
        guard = attach_guard(sched, every=1)
        load(sched, ["f1"], 4)
        sched._flows["f2"].deficit = 50  # credit while idle
        with pytest.raises(InvariantViolation) as info:
            sched.dequeue()
        assert info.value.check == "drr_idle_credit"
        guard.detach()

    def test_wfq_vtime_corruption(self):
        sched = WFQScheduler()
        sched.add_flow("f1", 1.0)
        guard = attach_guard(sched, every=1)
        load(sched, ["f1"], 4)
        sched.dequeue()
        sched._vtime = -5.0  # time ran backwards
        with pytest.raises(InvariantViolation) as info:
            sched.dequeue()
        assert info.value.check == "vtime_monotonic"
        guard.detach()

    def test_backlog_counter_corruption(self):
        sched = make_srr()
        guard = attach_guard(sched, every=1)
        load(sched, ["f1"], 4)
        sched._backlog_packets += 3
        with pytest.raises(InvariantViolation) as info:
            sched.dequeue()
        assert info.value.check == "backlog_accounting"
        guard.detach()

    def test_record_mode_collects_instead_of_raising(self):
        sched = make_drr()
        guard = attach_guard(sched, every=1, mode="record")
        load(sched, ["f1", "f2"], 4)
        sched._flows["f2"].deficit = 10**9
        while sched.dequeue() is not None:
            pass
        assert guard.violations
        assert all(
            isinstance(v, InvariantViolation) for v in guard.violations
        )
        guard.detach()

    def test_violation_carries_trace_window(self):
        tracer = Tracer()
        for i in range(8):
            tracer.emit("enqueue", float(i), flow="f1")
        sched = make_drr()
        guard = attach_guard(sched, every=1, window=4, tracer=tracer)
        load(sched, ["f1"], 2)
        sched._flows["f2"].deficit = 50
        with pytest.raises(InvariantViolation) as info:
            sched.dequeue()
        assert len(info.value.trace_window) == 4
        assert info.value.trace_window[-1]["t"] == 7.0
        guard.detach()


class TestZeroOverhead:
    def profile(self, with_guard_cycle):
        """Total elementary ops for a fixed workload."""
        ops = OpCounter()
        sched = make_srr(op_counter=ops)
        if with_guard_cycle:
            guard = attach_guard(sched, every=1)
            guard.detach()
        load(sched, ["f1", "f2", "f3"], 30)
        while sched.dequeue() is not None:
            pass
        if with_guard_cycle:
            # detach() restored the class method, not a wrapper.
            assert "dequeue" not in vars(sched)
        return ops.count

    def test_detached_guard_costs_nothing(self):
        assert self.profile(False) == self.profile(True)

    def test_attached_guard_does_not_perturb_op_counts(self):
        """Guards watch from outside: the scheduler's own op profile is
        identical guarded vs unguarded (checks never touch the counter)."""
        def run(guarded):
            ops = OpCounter()
            sched = make_srr(op_counter=ops)
            guard = attach_guard(sched, every=1) if guarded else None
            load(sched, ["f1", "f2", "f3"], 30)
            order = []
            while True:
                p = sched.dequeue()
                if p is None:
                    break
                order.append(p.flow_id)
            if guard:
                guard.detach()
            return ops.count, order

        assert run(False) == run(True)


class TestNetworkHelper:
    def test_guard_network_covers_every_port(self):
        net = Network(default_scheduler="srr")
        for n in ("a", "r", "b"):
            net.add_node(n)
        net.add_link("a", "r", rate_bps=10e6, delay=0.0001)
        net.add_link("r", "b", rate_bps=1e6, delay=0.0001)
        net.add_flow("f1", "a", "b", weight=1)
        net.attach_source("f1", CBRSource(200_000, packet_size=200))
        guards = guard_network(net, every=4)
        # add_link is bidirectional: a<->r and r<->b yield four ports.
        assert len(guards) == 4
        net.run(until=0.5)
        assert sum(g.checks_run for g in guards) > 0
        assert all(not g.violations for g in guards)
        for g in guards:
            g.detach()


class TestGuardConfig:
    def test_bad_every_rejected(self):
        with pytest.raises(ValueError):
            InvariantGuard(make_srr(), every=0)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantGuard(make_srr(), mode="explode")

    def test_attach_is_idempotent(self):
        sched = make_srr()
        guard = InvariantGuard(sched, every=1)
        guard.attach()
        guard.attach()
        load(sched, ["f1"], 2)
        sched.dequeue()
        assert guard.checks_run == 1
        guard.detach()
        guard.detach()  # second detach is a no-op
