"""Determinism and structure of seeded fault plans (repro.faults.plan)."""

import pytest

from repro.core import ConfigurationError
from repro.faults import FaultPlan, FaultSpec, build_fault_plan
from repro.harness import sweep

FULL_SPEC = FaultSpec(
    churn_rate_hz=2.0,
    flap_rate_hz=1.0,
    burst_rate_hz=1.0,
    malformed_rate_hz=1.0,
)
LINKS = [("r1", "r2"), ("r2", "b")]


def build(seed=7, spec=FULL_SPEC, duration=5.0):
    return build_fault_plan(
        spec, seed=seed, duration=duration, links=LINKS,
        churn_route=("a", "b"), burst_node="a",
    )


def plan_signature(seed):
    """Module-level so sweep() can pickle it into pool workers."""
    return build(seed=seed).signature()


class TestDeterminism:
    def test_same_seed_same_plan(self):
        a, b = build(seed=7), build(seed=7)
        assert a.events == b.events
        assert a.to_json_dict() == b.to_json_dict()
        assert a.signature() == b.signature()

    def test_different_seed_different_plan(self):
        assert build(seed=7).signature() != build(seed=8).signature()

    def test_plan_survives_process_boundary(self):
        """--jobs N workers derive bit-identical schedules to serial."""
        seeds = [1, 2, 3, 4]
        serial = [plan_signature(s) for s in seeds]
        pooled = sweep(plan_signature, [(s,) for s in seeds], jobs=2)
        assert pooled == serial

    def test_categories_are_independent(self):
        """Enabling bursts must not perturb the flap schedule."""
        flap_only = build(spec=FaultSpec(flap_rate_hz=1.0))
        combined = build(spec=FaultSpec(flap_rate_hz=1.0, burst_rate_hz=5.0))
        flaps = lambda p: [
            ev for ev in p.events if ev.kind in ("link_down", "link_up")
        ]
        assert flaps(flap_only) == flaps(combined)

    def test_roundtrip_preserves_signature(self):
        plan = build()
        clone = FaultPlan.from_json_dict(plan.to_json_dict())
        assert clone.signature() == plan.signature()


class TestStructure:
    def test_events_time_sorted_within_horizon(self):
        plan = build()
        times = [ev.time for ev in plan.events]
        assert times == sorted(times)
        assert all(0 < t < plan.duration for t in times)

    def test_every_down_has_a_paired_up(self):
        counts = build().counts()
        assert counts.get("link_down", 0) == counts.get("link_up", 0)
        assert counts.get("flow_join", 0) == counts.get("flow_leave", 0)

    def test_join_carries_route_and_rate(self):
        plan = build()
        joins = [ev for ev in plan.events if ev.kind == "flow_join"]
        assert joins
        for ev in joins:
            assert ev.arg("src") == "a" and ev.arg("dst") == "b"
            assert ev.arg("weight") >= 1
            assert ev.arg("rate_bps") == ev.arg("weight") * 16_000

    def test_intensity_zero_is_the_empty_plan(self):
        plan = build(spec=FULL_SPEC.scaled(0.0))
        assert plan.events == ()
        # The constant every fault-free e13 point shares.
        assert plan.signature() == "4f53cda18c2baa0c"

    def test_intensity_scales_event_volume(self):
        lo = len(build(spec=FULL_SPEC.scaled(1.0), duration=20.0).events)
        hi = len(build(spec=FULL_SPEC.scaled(8.0), duration=20.0).events)
        assert hi > lo

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            FULL_SPEC.scaled(-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            build(duration=0.0)

    def test_missing_targets_disable_categories(self):
        plan = build_fault_plan(
            FULL_SPEC, seed=7, duration=5.0, links=(),
            churn_route=None, burst_node=None,
        )
        assert plan.events == ()
