"""Tests for the SRR scheduler (repro.core.srr).

The paper-anchored cases: the exact SRR service sequence from the worked
example (Section III-C of the supplied text lists it for the flow set
{7 x w=1, 2 x w=2, 1 x w=4}), per-round weighted fairness, O(1) per-packet
operation counts, and work conservation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    DuplicateFlowError,
    InvalidWeightError,
    OpCounter,
    Packet,
    SRRScheduler,
    UnknownFlowError,
)


def drain(sched, limit=None):
    """Dequeue until idle (or limit packets) returning the flow-id sequence."""
    out = []
    while limit is None or len(out) < limit:
        p = sched.dequeue()
        if p is None:
            break
        out.append(p.flow_id)
    return out


def load(sched, flows, packets_each, size=100):
    for fid in flows:
        for i in range(packets_each):
            sched.enqueue(Packet(fid, size, seq=i))


class TestPaperExample:
    """Section III-C worked example: f0..f6 w=1, f7,f8 w=2, f9 w=4."""

    def make(self):
        s = SRRScheduler()
        for i in range(7):
            s.add_flow(f"f{i}", 1)
        s.add_flow("f7", 2)
        s.add_flow("f8", 2)
        s.add_flow("f9", 4)
        return s

    def test_one_round_service_sequence(self):
        s = self.make()
        load(s, [f"f{i}" for i in range(10)], packets_each=8)
        # One WSS^3 round serves total weight 15.
        got = drain(s, limit=15)
        expected = [
            "f9", "f7", "f8", "f9",
            "f0", "f1", "f2", "f3", "f4", "f5", "f6",
            "f9", "f7", "f8", "f9",
        ]
        assert got == expected

    def test_round_repeats(self):
        s = self.make()
        load(s, [f"f{i}" for i in range(10)], packets_each=8)
        seq = drain(s, limit=30)
        assert seq[:15] == seq[15:]

    def test_inter_service_distances_match_paper(self):
        # The paper contrasts f9's SRR gaps (1, 3, 8, 3 cyclically) with
        # G-3's smoother (3, 4, 4, 4).
        s = self.make()
        load(s, [f"f{i}" for i in range(10)], packets_each=8)
        seq = drain(s, limit=30)
        positions = [i for i, fid in enumerate(seq) if fid == "f9"]
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert gaps[:4] == [3, 8, 3, 1]


class TestWeightedFairness:
    @pytest.mark.parametrize(
        "weights",
        [
            {"a": 1, "b": 1},
            {"a": 3, "b": 1},
            {"a": 5, "b": 3, "c": 2},
            {"a": 7, "b": 7, "c": 1, "d": 16},
            {f"f{i}": (i % 5) + 1 for i in range(20)},
        ],
    )
    def test_services_per_round_equal_weight(self, weights):
        """While all flows stay backlogged, one WSS round serves each flow
        exactly `weight` times (claim C2)."""
        s = SRRScheduler()
        for fid, w in weights.items():
            s.add_flow(fid, w)
        order = max(w for w in weights.values()).bit_length()
        round_slots = sum(weights.values())
        rounds = 3
        load(s, weights, packets_each=rounds * max(weights.values()) + 5)
        seq = drain(s, limit=rounds * round_slots)
        for fid, w in weights.items():
            assert seq.count(fid) == rounds * w, (fid, w, order)

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=1, max_value=64),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_round_fairness(self, weights):
        s = SRRScheduler()
        for fid, w in weights.items():
            s.add_flow(fid, w)
        total = sum(weights.values())
        load(s, weights, packets_each=2 * max(weights.values()) + 1)
        seq = drain(s, limit=2 * total)
        for fid, w in weights.items():
            assert seq.count(fid) == 2 * w

    def test_long_run_throughput_share(self):
        s = SRRScheduler()
        s.add_flow("heavy", 10)
        s.add_flow("light", 1)
        load(s, ["heavy", "light"], packets_each=2000)
        seq = drain(s, limit=2200)
        heavy = seq.count("heavy")
        light = seq.count("light")
        assert heavy / light == pytest.approx(10.0, rel=0.05)


class TestSmoothness:
    def test_power_of_two_flows_are_perfectly_spread(self):
        """With one flow per column (an SWM configuration), each flow's
        services are equally spaced — the 'smoothed' in SRR."""
        s = SRRScheduler()
        s.add_flow("w4", 4)
        s.add_flow("w2", 2)
        s.add_flow("w1", 1)
        load(s, ["w4", "w2", "w1"], packets_each=50)
        seq = drain(s, limit=7 * 6)  # six full rounds
        for fid, w in [("w4", 4), ("w2", 2), ("w1", 1)]:
            positions = [i for i, x in enumerate(seq) if x == fid]
            gaps = {b - a for a, b in zip(positions, positions[1:])}
            # Perfectly regular: a single gap value 7 / w rounded pattern.
            assert len(gaps) <= 2, (fid, gaps)
            assert max(gaps) <= (7 // w) + 1

    def test_smoother_than_wrr_burst(self):
        """WRR serves a weight-8 flow 8 times back-to-back; SRR never
        serves it twice in a row when other flows are backlogged."""
        s = SRRScheduler()
        s.add_flow("big", 8)
        s.add_flow("small", 7)
        load(s, ["big", "small"], packets_each=100)
        seq = drain(s, limit=60)
        runs = 1
        longest = 1
        for a, b in zip(seq, seq[1:]):
            runs = runs + 1 if a == b == "big" else 1
            longest = max(longest, runs)
        assert longest <= 2


class TestWindowSmoothness:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=1, max_value=32),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_every_flow_served_in_any_two_round_window(self, weights):
        """Long-run smoothness property: with all flows backlogged, ANY
        window of two rounds' worth of slots contains at least ``w``
        services of a weight-w flow (no flow can be squeezed out of a
        window by others' bursts — the anti-WRR property)."""
        s = SRRScheduler()
        for fid, w in weights.items():
            s.add_flow(fid, w)
        total = sum(weights.values())
        rounds = 4
        load(s, weights, packets_each=rounds * max(weights.values()) + 4)
        seq = drain(s, limit=rounds * total)
        window = 2 * total
        for start in range(0, len(seq) - window + 1, max(total // 2, 1)):
            chunk = seq[start:start + window]
            for fid, w in weights.items():
                assert chunk.count(fid) >= w, (fid, w, start)


class TestDynamics:
    def test_flow_leaves_matrix_when_drained(self):
        s = SRRScheduler()
        s.add_flow("a", 3)
        s.enqueue(Packet("a", 10))
        assert s.flow_state("a").in_matrix
        s.dequeue()
        assert not s.flow_state("a").in_matrix
        assert s.dequeue() is None

    def test_flow_rejoins_on_new_packet(self):
        s = SRRScheduler()
        s.add_flow("a", 1)
        s.enqueue(Packet("a", 10))
        s.dequeue()
        s.enqueue(Packet("a", 10))
        assert s.flow_state("a").in_matrix
        assert s.dequeue().flow_id == "a"

    def test_idle_scheduler_returns_none_and_resets(self):
        s = SRRScheduler()
        s.add_flow("a", 2)
        assert s.dequeue() is None
        assert s.scan_position == 0
        assert s.order == 0

    def test_arrival_of_heavier_flow_raises_order(self):
        s = SRRScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 8)
        s.enqueue(Packet("a", 10))
        assert s.order == 1
        s.enqueue(Packet("b", 10))
        assert s.order == 4

    def test_departure_of_heaviest_lowers_order(self):
        s = SRRScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 8)
        load(s, {"a": 1, "b": 1}, packets_each=1)
        # Drain b's single packet plus a's.
        drain(s)
        s.enqueue(Packet("a", 10))
        assert s.order == 1

    def test_remove_backlogged_flow_drops_queue(self):
        s = SRRScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        load(s, {"a": 1, "b": 1}, packets_each=4)
        dropped = s.remove_flow("a")
        assert dropped == 4
        assert s.backlog == 4
        assert drain(s) == ["b"] * 4

    def test_remove_flow_mid_scan_is_safe(self):
        """Removing the flow the scan cursor points at must not corrupt
        the scan (regression guard for the cursor-fix in _unlink)."""
        s = SRRScheduler()
        for i in range(4):
            s.add_flow(i, 1)
        load(s, range(4), packets_each=2)
        first = s.dequeue()  # cursor now points at the next column node
        assert first.flow_id == 0
        s.remove_flow(1)  # likely the cursor target
        rest = drain(s)
        assert rest.count(1) == 0
        assert rest.count(2) == 2 and rest.count(3) == 2

    def test_duplicate_flow_rejected(self):
        s = SRRScheduler()
        s.add_flow("a", 1)
        with pytest.raises(DuplicateFlowError):
            s.add_flow("a", 2)

    def test_unknown_flow_operations(self):
        s = SRRScheduler()
        with pytest.raises(UnknownFlowError):
            s.enqueue(Packet("ghost", 10))
        with pytest.raises(UnknownFlowError):
            s.remove_flow("ghost")
        with pytest.raises(UnknownFlowError):
            s.flow_state("ghost")

    def test_invalid_weights_rejected(self):
        s = SRRScheduler()
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", 0)
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", 2.5)

    def test_weight_wider_than_matrix_rejected_cleanly(self):
        s = SRRScheduler(max_order=4)
        with pytest.raises(ConfigurationError):
            s.add_flow("a", 16)
        assert not s.has_flow("a")  # not half-registered

    def test_queue_limit_enforced(self):
        s = SRRScheduler()
        s.add_flow("a", 1, max_queue=2)
        assert s.enqueue(Packet("a", 10))
        assert s.enqueue(Packet("a", 10))
        assert not s.enqueue(Packet("a", 10))
        assert s.backlog == 2


class TestComplexity:
    def test_ops_per_packet_constant_in_n(self):
        """Claim C1: dequeue cost does not grow with the number of flows."""

        def max_ops(n_flows):
            ops = OpCounter()
            s = SRRScheduler(op_counter=ops)
            for i in range(n_flows):
                s.add_flow(i, (i % 7) + 1)
            load(s, range(n_flows), packets_each=2)
            worst = 0
            for _ in range(min(500, 2 * n_flows)):
                before = ops.count
                if s.dequeue() is None:
                    break
                worst = max(worst, ops.count - before)
            return worst

        small = max_ops(8)
        large = max_ops(4096)
        assert large <= small + 3  # constant, modulo tiny scan variance

    def test_bounded_empty_scan_steps(self):
        """At most ~2 WSS terms are scanned per packet even with sparse
        columns (term value 1 always lands on a non-empty column)."""
        ops = OpCounter()
        s = SRRScheduler(op_counter=ops)
        # One flow with a huge weight: order is 10, 9 of 10 columns empty.
        s.add_flow("big", 512)
        load(s, ["big"], packets_each=300)
        worst = 0
        for _ in range(300):
            before = ops.count
            assert s.dequeue() is not None
            worst = max(worst, ops.count - before)
        assert worst <= 5


class TestDeficitMode:
    def test_byte_fairness_with_mixed_sizes(self):
        s = SRRScheduler(mode="deficit", quantum=1000)
        s.add_flow("jumbo", 1)
        s.add_flow("tiny", 1)
        for i in range(200):
            s.enqueue(Packet("jumbo", 1000, seq=i))
        for i in range(2000):
            s.enqueue(Packet("tiny", 100, seq=i))
        sent = {"jumbo": 0, "tiny": 0}
        for _ in range(600):
            p = s.dequeue()
            if p is None:
                break
            sent[p.flow_id] += p.size
        # Equal weights -> equal bytes despite 10x size imbalance.
        assert sent["jumbo"] / sent["tiny"] == pytest.approx(1.0, rel=0.1)

    def test_packet_mode_is_packet_fair_not_byte_fair(self):
        s = SRRScheduler(mode="packet")
        s.add_flow("jumbo", 1)
        s.add_flow("tiny", 1)
        for i in range(100):
            s.enqueue(Packet("jumbo", 1000, seq=i))
            s.enqueue(Packet("tiny", 100, seq=i))
        seq = drain(s, limit=100)
        assert seq.count("jumbo") == seq.count("tiny")

    def test_deficit_carries_over_small_quantum(self):
        # Quantum of 400 vs packets of 1000: the flow accumulates credit
        # over visits and still makes progress.
        s = SRRScheduler(mode="deficit", quantum=400)
        s.add_flow("a", 1)
        for i in range(5):
            s.enqueue(Packet("a", 1000, seq=i))
        got = drain(s)
        assert got == ["a"] * 5

    def test_deficit_reset_when_drained(self):
        s = SRRScheduler(mode="deficit", quantum=5000)
        s.add_flow("a", 1)
        s.enqueue(Packet("a", 100))
        s.dequeue()
        assert s.flow_state("a").deficit == 0

    def test_multiple_packets_per_visit(self):
        s = SRRScheduler(mode="deficit", quantum=1000)
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        for i in range(10):
            s.enqueue(Packet("a", 100, seq=i))
        s.enqueue(Packet("b", 1000))
        seq = drain(s, limit=11)
        # a gets ~10 packets per visit (1000/100); they come in bursts but
        # the byte split stays equal.
        assert seq.count("a") == 10 and seq.count("b") == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SRRScheduler(mode="wfq")
        with pytest.raises(ConfigurationError):
            SRRScheduler(mode="deficit", quantum=0)


class TestWSSStorageStrategies:
    """The paper stores the WSS in an array; we default to the closed
    form. Both must schedule identically (E9 ablation support)."""

    def test_identical_service_order(self):
        weights = {f"f{i}": (i % 5) + 1 for i in range(9)}
        orders = []
        for storage in ("closed", "materialized"):
            s = SRRScheduler(wss_storage=storage)
            for fid, w in weights.items():
                s.add_flow(fid, w)
            load(s, weights, packets_each=40)
            orders.append(drain(s, limit=120))
        assert orders[0] == orders[1]

    def test_materialized_handles_order_changes(self):
        s = SRRScheduler(wss_storage="materialized")
        s.add_flow("a", 1)
        s.add_flow("b", 64)
        s.enqueue(Packet("a", 100))
        assert s.dequeue().flow_id == "a"
        load(s, {"b": 1}, packets_each=5)
        assert drain(s) == ["b"] * 5

    def test_invalid_storage_rejected(self):
        with pytest.raises(ConfigurationError):
            SRRScheduler(wss_storage="folded-wrong")


class TestOrderChangePolicies:
    """Ablation of the dynamic-order policy (DESIGN.md section 5)."""

    @pytest.mark.parametrize("policy", ["restart", "continue"])
    def test_round_fairness_holds_after_order_change(self, policy):
        s = SRRScheduler(order_change=policy)
        s.add_flow("a", 3)
        s.add_flow("b", 1)
        load(s, {"a": 1, "b": 1}, packets_each=100)
        drain(s, limit=10)
        # Raise the order mid-stream.
        s.add_flow("c", 8)
        load(s, {"c": 1}, packets_each=200)
        seq = drain(s, limit=3 * 12)  # ~three rounds of total weight 12
        # Shares settle at 8:3:1; "continue" starts mid-round, so allow
        # one round of phase slack.
        assert abs(seq.count("c") - 24) <= 3
        assert abs(seq.count("a") - 9) <= 3
        assert abs(seq.count("b") - 3) <= 2

    @pytest.mark.parametrize("policy", ["restart", "continue"])
    def test_order_shrink(self, policy):
        s = SRRScheduler(order_change=policy)
        s.add_flow("big", 8)
        s.add_flow("small", 1)
        for i in range(3):
            s.enqueue(Packet("big", 100, seq=i))
        s.enqueue(Packet("small", 100))
        # big has 3 packets, small 1: all must come out despite the
        # order dropping from 4 to 1 when big drains.
        got = drain(s)
        assert sorted(map(str, got)) == ["big", "big", "big", "small"]
        s.enqueue(Packet("small", 100))
        assert s.dequeue().flow_id == "small"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            SRRScheduler(order_change="maybe")


class TestAccounting:
    def test_backlog_counters_track_exactly(self):
        s = SRRScheduler()
        s.add_flow("a", 2)
        s.add_flow("b", 1)
        s.enqueue(Packet("a", 100))
        s.enqueue(Packet("b", 300))
        assert s.backlog == 2
        assert s.backlog_bytes == 400
        s.dequeue()
        assert s.backlog == 1
        s.dequeue()
        assert s.backlog == 0
        assert s.backlog_bytes == 0
        assert s.is_idle

    def test_flow_stats_accumulate(self):
        s = SRRScheduler()
        s.add_flow("a", 1)
        for i in range(3):
            s.enqueue(Packet("a", 50, seq=i))
        drain(s)
        st_ = s.flow_state("a")
        assert st_.packets_sent == 3
        assert st_.bytes_sent == 150

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["enq", "deq"]),
                st.integers(min_value=0, max_value=4),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_random_ops_keep_invariants(self, ops_list):
        s = SRRScheduler()
        for i in range(5):
            s.add_flow(i, i + 1)
        queued = 0
        for op, fid in ops_list:
            if op == "enq":
                s.enqueue(Packet(fid, 100))
                queued += 1
            else:
                if s.dequeue() is not None:
                    queued -= 1
        assert s.backlog == queued
        s.matrix.check_invariants()
        for i in range(5):
            flow = s.flow_state(i)
            assert flow.in_matrix == flow.backlogged
        assert len(drain(s)) == queued
