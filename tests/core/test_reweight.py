"""In-place reweighting (FlowTableScheduler.reweight) for SRR and DRR.

The weight adapter's closed loop depends on reweight being (a) live —
the new weight takes effect for subsequent service without touching the
queue — and (b) transactional — a rejected weight (SRR max-order, DRR
credit floor, plain validation) restores the flow exactly as it was.
"""

import pytest

from repro.core import (
    ConfigurationError,
    InvalidWeightError,
    Packet,
    SRRScheduler,
    UnknownFlowError,
)
from repro.schedulers import DRRScheduler, FIFOScheduler


def load(sched, fid, n, size=100):
    for i in range(n):
        sched.enqueue(Packet(fid, size, seq=i))


def service_counts(sched, n):
    counts = {}
    for _ in range(n):
        p = sched.dequeue()
        assert p is not None
        counts[p.flow_id] = counts.get(p.flow_id, 0) + 1
    return counts


class TestSRR:
    def test_reweight_changes_service_share(self):
        s = SRRScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        load(s, "a", 200)
        load(s, "b", 200)
        before = service_counts(s, 40)
        assert abs(before["a"] - before["b"]) <= 2  # equal weights
        s.reweight("a", 4)
        assert s.flow_state("a").weight == 4
        assert s.order == 3  # the matrix tracked the new top bit
        after = service_counts(s, 100)
        assert after["a"] > 2.5 * after["b"]  # ~4:1 share now

    def test_reweight_preserves_queue(self):
        s = SRRScheduler()
        s.add_flow("a", 2)
        load(s, "a", 10)
        s.reweight("a", 5)
        assert len(s.flow_state("a").queue) == 10
        assert service_counts(s, 10) == {"a": 10}  # nothing lost

    def test_noop_reweight(self):
        s = SRRScheduler()
        s.add_flow("a", 3)
        load(s, "a", 1)
        s.reweight("a", 3)
        assert s.flow_state("a").weight == 3
        assert s.dequeue().flow_id == "a"

    def test_rejected_weight_restores_flow(self):
        s = SRRScheduler(max_order=3)
        s.add_flow("a", 7)
        load(s, "a", 5)
        with pytest.raises(ConfigurationError):
            s.reweight("a", 16)  # bit_length 5 > max_order 3
        # Fully restored: same weight, still registered, still servable.
        assert s.has_flow("a")
        assert s.flow_state("a").weight == 7
        assert service_counts(s, 5) == {"a": 5}

    def test_invalid_weight_rejected(self):
        s = SRRScheduler()
        s.add_flow("a", 1)
        with pytest.raises(InvalidWeightError):
            s.reweight("a", 0)
        with pytest.raises(InvalidWeightError):
            s.reweight("a", 2.5)
        assert s.flow_state("a").weight == 1

    def test_unknown_flow_raises(self):
        with pytest.raises(UnknownFlowError):
            SRRScheduler().reweight("ghost", 2)


class TestDRR:
    def test_reweight_changes_service_share(self):
        s = DRRScheduler(quantum=100)
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        load(s, "a", 300, size=100)
        load(s, "b", 300, size=100)
        service_counts(s, 40)
        s.reweight("a", 3)
        after = service_counts(s, 200)
        assert after["a"] > 2 * after["b"]

    def test_credit_floor_rejected_and_restored(self):
        s = DRRScheduler(quantum=1)
        s.add_flow("a", 1)
        load(s, "a", 3)
        with pytest.raises(ConfigurationError):
            s.reweight("a", 2 ** -30)  # below MIN_VISIT_CREDIT
        assert s.has_flow("a")
        assert s.flow_state("a").weight == 1
        assert service_counts(s, 3) == {"a": 3}


class TestUnsupported:
    def test_fifo_refuses_reweight(self):
        s = FIFOScheduler()
        s.add_flow("a", 1)
        assert not s.supports_reweight
        with pytest.raises(ConfigurationError):
            s.reweight("a", 2)
