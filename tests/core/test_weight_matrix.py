"""Tests for repro.core.weight_matrix."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.flow import FlowState
from repro.core.weight_matrix import ColumnList, WeightMatrix


def make_flow(fid, weight):
    return FlowState(fid, weight)


class TestColumnList:
    def test_append_and_iterate(self):
        col = ColumnList(0)
        f1, f2 = make_flow("a", 1), make_flow("b", 1)
        col.append(f1.nodes[0])
        col.append(f2.nodes[0])
        assert [f.flow_id for f in col] == ["a", "b"]
        assert len(col) == 2

    def test_unlink_middle(self):
        col = ColumnList(0)
        flows = [make_flow(i, 1) for i in range(3)]
        for f in flows:
            col.append(f.nodes[0])
        col.unlink(flows[1].nodes[0])
        assert [f.flow_id for f in col] == [0, 2]

    def test_unlink_head_and_tail(self):
        col = ColumnList(0)
        flows = [make_flow(i, 1) for i in range(3)]
        for f in flows:
            col.append(f.nodes[0])
        col.unlink(flows[0].nodes[0])
        col.unlink(flows[2].nodes[0])
        assert [f.flow_id for f in col] == [1]

    def test_double_append_raises(self):
        col = ColumnList(0)
        f = make_flow("a", 1)
        col.append(f.nodes[0])
        with pytest.raises(ConfigurationError):
            col.append(f.nodes[0])

    def test_unlink_unlinked_raises(self):
        col = ColumnList(0)
        f = make_flow("a", 1)
        with pytest.raises(ConfigurationError):
            col.unlink(f.nodes[0])

    def test_first_returns_tail_sentinel_when_empty(self):
        col = ColumnList(0)
        assert col.first() is col.tail
        assert col.first().flow is None


class TestWeightMatrix:
    def test_insert_links_all_weight_bits(self):
        wm = WeightMatrix()
        f = make_flow("a", 0b1011)  # bits 0, 1, 3
        wm.insert(f)
        assert f.in_matrix
        assert wm.column_population(0) == 1
        assert wm.column_population(1) == 1
        assert wm.column_population(2) == 0
        assert wm.column_population(3) == 1
        assert wm.flow_count == 1

    def test_order_tracks_highest_nonempty_column(self):
        wm = WeightMatrix()
        assert wm.order == 0
        a = make_flow("a", 1)
        wm.insert(a)
        assert wm.order == 1
        b = make_flow("b", 12)  # bits 2, 3
        wm.insert(b)
        assert wm.order == 4
        wm.remove(b)
        assert wm.order == 1
        wm.remove(a)
        assert wm.order == 0
        assert wm.empty

    def test_order_with_shared_columns(self):
        wm = WeightMatrix()
        a, b = make_flow("a", 4), make_flow("b", 4)
        wm.insert(a)
        wm.insert(b)
        assert wm.order == 3
        wm.remove(a)
        assert wm.order == 3  # column 2 still has b
        wm.remove(b)
        assert wm.order == 0

    def test_rejects_weight_wider_than_matrix(self):
        wm = WeightMatrix(max_order=4)
        with pytest.raises(ConfigurationError):
            wm.insert(make_flow("a", 16))

    def test_rejects_bad_max_order(self):
        with pytest.raises(ConfigurationError):
            WeightMatrix(max_order=0)
        with pytest.raises(ConfigurationError):
            WeightMatrix(max_order=63)

    def test_reinsert_after_remove(self):
        wm = WeightMatrix()
        f = make_flow("a", 5)
        wm.insert(f)
        wm.remove(f)
        wm.insert(f)
        assert f.in_matrix
        assert wm.column_population(0) == 1
        assert wm.column_population(2) == 1
        wm.check_invariants()

    def test_invariant_checker_passes_on_valid_state(self):
        wm = WeightMatrix()
        flows = [make_flow(i, w) for i, w in enumerate([1, 2, 3, 7, 8, 21])]
        for f in flows:
            wm.insert(f)
        wm.check_invariants()
        wm.remove(flows[3])
        wm.check_invariants()

    @given(
        st.lists(st.integers(min_value=1, max_value=1023), min_size=1, max_size=40),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_insert_remove_keeps_invariants(self, weights, data):
        wm = WeightMatrix()
        flows = [make_flow(i, w) for i, w in enumerate(weights)]
        inserted = []
        for f in flows:
            wm.insert(f)
            inserted.append(f)
        # Remove a random subset, checking invariants as we go.
        to_remove = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(flows) - 1),
                unique=True,
            )
        )
        for idx in to_remove:
            wm.remove(flows[idx])
            inserted.remove(flows[idx])
            wm.check_invariants()
        expected_mask = 0
        for f in inserted:
            expected_mask |= int(f.weight)
        assert wm.order == expected_mask.bit_length()
        assert wm.flow_count == len(inserted)
