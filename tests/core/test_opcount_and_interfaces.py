"""Tests for OpCounter, the scheduler base class, and misc core paths."""

import pytest

from repro.core import (
    NULL_COUNTER,
    FlowTableScheduler,
    InvalidWeightError,
    NullOpCounter,
    OpCounter,
    Packet,
    SRRScheduler,
)


class TestOpCounter:
    def test_bump_and_reset(self):
        ops = OpCounter()
        ops.bump()
        ops.bump(5)
        assert ops.count == 6
        ops.reset()
        assert ops.count == 0

    def test_null_counter_ignores(self):
        ops = NullOpCounter()
        ops.bump(100)
        assert ops.count == 0

    def test_shared_null_instance(self):
        NULL_COUNTER.bump(7)
        assert NULL_COUNTER.count == 0

    def test_repr(self):
        ops = OpCounter()
        ops.bump(3)
        assert "3" in repr(ops)


class _MinimalScheduler(FlowTableScheduler):
    """FlowTableScheduler subclass with trivial FIFO-ish service, used to
    exercise the base-class plumbing in isolation."""

    name = "minimal"

    def dequeue(self):
        for flow in self._flows.values():
            if flow.queue:
                return self._account_departure(flow.take())
        return None


class TestFlowTableSchedulerBase:
    def test_hooks_default_noop(self):
        s = _MinimalScheduler()
        s.add_flow("a", 1.5)  # float allowed: not integer-weight class
        s.enqueue(Packet("a", 10))
        assert s.dequeue().flow_id == "a"

    def test_weight_validation_non_integer_class(self):
        s = _MinimalScheduler()
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", 0)
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", -2.5)
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", "heavy")
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", True)

    def test_flow_count_property(self):
        s = _MinimalScheduler()
        assert s.flow_count == 0
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        assert s.flow_count == 2
        s.remove_flow("a")
        assert s.flow_count == 1

    def test_len_matches_backlog(self):
        s = _MinimalScheduler()
        s.add_flow("a", 1)
        s.enqueue(Packet("a", 10))
        assert len(s) == s.backlog == 1

    def test_repr_mentions_state(self):
        s = _MinimalScheduler()
        s.add_flow("a", 1)
        r = repr(s)
        assert "flows=1" in r and "backlog=0" in r


class TestSRRMisc:
    def test_repr(self):
        s = SRRScheduler()
        s.add_flow("a", 3)
        s.enqueue(Packet("a", 10))
        r = repr(s)
        assert "mode='packet'" in r and "order=2" in r

    def test_column_populations_diagnostic(self):
        s = SRRScheduler()
        s.add_flow("a", 0b101)
        s.add_flow("b", 0b001)
        s.enqueue(Packet("a", 10))
        s.enqueue(Packet("b", 10))
        assert s.column_populations() == [2, 0, 1]

    def test_scan_position_visibility(self):
        s = SRRScheduler()
        s.add_flow("a", 1)
        s.enqueue(Packet("a", 10))
        assert s.scan_position == 0
        s.dequeue()
        assert s.scan_position >= 1
