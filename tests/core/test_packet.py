"""Tests for repro.core.packet."""

import pytest

from repro.core.packet import Packet


class TestPacket:
    def test_basic_fields(self):
        p = Packet("f1", size=200, created_at=1.5, seq=3)
        assert p.flow_id == "f1"
        assert p.size == 200
        assert p.created_at == 1.5
        assert p.seq == 3
        assert p.delivered_at is None

    def test_uids_are_unique_and_increasing(self):
        a = Packet("f", 10)
        b = Packet("f", 10)
        assert a.uid != b.uid
        assert b.uid > a.uid

    def test_delay_none_until_delivered(self):
        p = Packet("f", 10, created_at=2.0)
        assert p.delay is None
        p.delivered_at = 2.75
        assert p.delay == pytest.approx(0.75)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Packet("f", 0)
        with pytest.raises(ValueError):
            Packet("f", -5)

    def test_repr_is_compact(self):
        p = Packet("f1", 100, created_at=0.5, seq=7)
        r = repr(p)
        assert "f1" in r and "100" in r and "seq=7" in r
