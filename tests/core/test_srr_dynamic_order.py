"""SRR under *dynamic* order (k) changes, mid-round.

The srr.py docstring claims: when the highest non-empty column changes
(a heavier flow arrives, or the heaviest drains), the WSS scan restarts
at the new order and "perturbs fairness for at most one round". These
tests pin that claim: after any mid-round k change, every backlogged
flow's service count over m subsequent rounds stays within one round's
share (``m*w ± w``) — exactly the regime the fault injector's churn
events drive in E13.
"""

import pytest

from repro.core import Packet, SRRScheduler


def load(sched, fid, n, size=100):
    for i in range(n):
        sched.enqueue(Packet(fid, size, seq=i))


def service_counts(sched, n_packets):
    counts = {}
    for _ in range(n_packets):
        p = sched.dequeue()
        assert p is not None, "work conservation broke mid-measurement"
        counts[p.flow_id] = counts.get(p.flow_id, 0) + 1
    return counts


def assert_within_one_round(counts, weights, rounds):
    for fid, w in weights.items():
        got = counts.get(fid, 0)
        assert abs(got - rounds * w) <= w, (
            f"{fid}: {got} services over {rounds} rounds at weight {w} "
            f"deviates by more than one round's share"
        )


class TestHeaviestFlowDrains:
    def test_order_drops_when_heaviest_drains(self):
        s = SRRScheduler()
        s.add_flow("light", 1)
        s.add_flow("mid", 2)
        s.add_flow("heavy", 4)
        load(s, "light", 50)
        load(s, "mid", 50)
        load(s, "heavy", 2)  # drains mid-round
        assert s.order == 3
        while s._flows["heavy"].queue:
            s.dequeue()
        assert s.order == 2  # k tracked the drain immediately

    def test_fairness_perturbed_at_most_one_round(self):
        s = SRRScheduler()
        s.add_flow("light", 1)
        s.add_flow("mid", 2)
        s.add_flow("heavy", 4)
        load(s, "light", 100)
        load(s, "mid", 100)
        load(s, "heavy", 3)  # gone partway through round one
        while s._flows["heavy"].queue:
            s.dequeue()
        # Post-drain: order is 2, the per-round total weight is 3.
        rounds = 10
        counts = service_counts(s, 3 * rounds)
        assert_within_one_round(counts, {"light": 1, "mid": 2}, rounds)


class TestHeavierFlowJoins:
    def test_order_rises_on_midround_join(self):
        s = SRRScheduler()
        s.add_flow("light", 1)
        s.add_flow("mid", 2)
        load(s, "light", 100)
        load(s, "mid", 100)
        for _ in range(2):  # partway into a WSS^2 round
            s.dequeue()
        assert s.order == 2
        s.add_flow("big", 8)
        load(s, "big", 200)
        assert s.order == 4  # k jumped with the new highest column

    @pytest.mark.parametrize("order_change", ["restart", "continue"])
    def test_fairness_after_join_within_one_round(self, order_change):
        s = SRRScheduler(order_change=order_change)
        s.add_flow("light", 1)
        s.add_flow("mid", 2)
        load(s, "light", 200)
        load(s, "mid", 200)
        for _ in range(2):
            s.dequeue()
        s.add_flow("big", 8)
        load(s, "big", 200)
        # New round: total weight 11.
        rounds = 8
        counts = service_counts(s, 11 * rounds)
        assert_within_one_round(
            counts, {"light": 1, "mid": 2, "big": 8}, rounds
        )

    def test_join_then_leave_returns_to_original_cadence(self):
        """A churn cycle (join + leave of a heavy flow) leaves the
        survivors' long-run shares untouched — the WSS restart costs at
        most one round, not permanent skew."""
        s = SRRScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 2)
        load(s, "a", 300)
        load(s, "b", 300)
        s.dequeue()
        s.add_flow("burst", 4)
        load(s, "burst", 8)
        while s._flows["burst"].queue:
            s.dequeue()
        s.remove_flow("burst")
        assert s.order == 2
        rounds = 20
        counts = service_counts(s, 3 * rounds)
        assert_within_one_round(counts, {"a": 1, "b": 2}, rounds)


class TestRepeatedChurn:
    def test_many_cycles_never_break_invariants(self):
        """Stress the dynamic path the fault injector exercises: repeated
        joins/leaves at varying weights with the guard watching."""
        from repro.faults import attach_guard

        s = SRRScheduler()
        s.add_flow("base", 2)
        load(s, "base", 500)
        guard = attach_guard(s, every=1)
        for cycle in range(12):
            fid = f"churn-{cycle}"
            s.add_flow(fid, 1 << (cycle % 4))
            load(s, fid, 5)
            for _ in range(12):
                s.dequeue()
            if s._flows[fid].queue:
                while s._flows[fid].queue:
                    s.dequeue()
            s.remove_flow(fid)
        assert guard.violations == []
        assert guard.checks_run > 0
        guard.detach()
