"""Tests for the Weight Spread Sequence (repro.core.wss).

Covers the paper's Eq. 6-7 examples, the closed form, the even-spreading
property that underlies SRR's smoothness, and the space-time tradeoff
(FoldedWSS) the paper proposes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.wss import (
    FoldedWSS,
    MaterializedWSS,
    WSSCursor,
    iter_wss,
    value_count,
    value_positions,
    wss_length,
    wss_sequence,
    wss_sequence_recursive,
    wss_term,
)


class TestPaperExamples:
    def test_wss_1(self):
        assert wss_sequence(1) == [1]

    def test_wss_2(self):
        assert wss_sequence(2) == [1, 2, 1]

    def test_wss_3(self):
        assert wss_sequence(3) == [1, 2, 1, 3, 1, 2, 1]

    def test_wss_4_matches_paper_section_iii_c(self):
        # The paper's G-3 example spells WSS^4 out in full.
        assert wss_sequence(4) == [1, 2, 1, 3, 1, 2, 1, 4, 1, 2, 1, 3, 1, 2, 1]

    def test_length(self):
        for k in range(1, 12):
            assert wss_length(k) == 2**k - 1
            assert len(wss_sequence(k)) == 2**k - 1


class TestClosedForm:
    @pytest.mark.parametrize("order", range(1, 15))
    def test_matches_recursive_definition(self, order):
        assert wss_sequence(order) == wss_sequence_recursive(order)

    def test_term_is_order_independent_prefix_property(self):
        # WSS^(k-1) is a prefix of WSS^k, so term(i) needs no order.
        big = wss_sequence(10)
        small = wss_sequence(7)
        assert big[: len(small)] == small

    @given(st.integers(min_value=1, max_value=2**40))
    def test_term_equals_trailing_zeros_plus_one(self, i):
        expected = 1
        j = i
        while j % 2 == 0:
            expected += 1
            j //= 2
        assert wss_term(i) == expected

    def test_position_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            wss_term(0)

    def test_negative_position_rejected(self):
        with pytest.raises(ConfigurationError):
            wss_term(-5)


class TestDistributionProperties:
    @pytest.mark.parametrize("order", range(1, 13))
    def test_value_counts(self, order):
        """Value v occurs exactly 2^(order-v) times."""
        seq = wss_sequence(order)
        for v in range(1, order + 1):
            assert seq.count(v) == 2 ** (order - v) == value_count(order, v)

    @pytest.mark.parametrize("order", range(2, 13))
    def test_even_spreading(self, order):
        """Consecutive occurrences of value v are exactly 2^v apart.

        This is the property that makes SRR *smoothed*: each weight-matrix
        column is visited at perfectly regular intervals.
        """
        seq = wss_sequence(order)
        for v in range(1, order + 1):
            positions = [i + 1 for i, x in enumerate(seq) if x == v]
            assert positions == value_positions(order, v)
            gaps = {b - a for a, b in zip(positions, positions[1:])}
            assert gaps <= {2**v}
            # First occurrence is at 2^(v-1): mid-point of its spacing.
            assert positions[0] == 2 ** (v - 1)

    @pytest.mark.parametrize("order", range(1, 13))
    def test_column_visit_totals_equal_weight_service(self, order):
        """Sum over columns of (visits * column weight) = 2^order - 1.

        Column j = order - v is visited 2^j times and stands for weight
        2^j; one full round therefore serves exactly 2^order - 1 weight
        units — the maximum schedulable weight sum.
        """
        total = sum(2 ** (order - v) for v in range(1, order + 1))
        assert total == 2**order - 1

    def test_value_count_validation(self):
        with pytest.raises(ConfigurationError):
            value_count(4, 0)
        with pytest.raises(ConfigurationError):
            value_count(4, 5)


class TestIterator:
    def test_iter_matches_list(self):
        assert list(iter_wss(9)) == wss_sequence(9)

    def test_invalid_orders(self):
        with pytest.raises(ConfigurationError):
            list(iter_wss(0))
        with pytest.raises(ConfigurationError):
            wss_sequence(63)


class TestCursor:
    def test_cycles_through_sequence(self):
        cur = WSSCursor(3)
        seq = [cur.advance() for _ in range(7)]
        assert seq == wss_sequence(3)
        # Wraps around.
        assert [cur.advance() for _ in range(7)] == wss_sequence(3)

    def test_position_tracking(self):
        cur = WSSCursor(4)
        assert cur.position == 0
        cur.advance()
        assert cur.position == 1
        for _ in range(14):
            cur.advance()
        assert cur.position == 15
        cur.advance()
        assert cur.position == 1  # wrapped

    def test_set_order_restart(self):
        cur = WSSCursor(3)
        for _ in range(5):
            cur.advance()
        cur.set_order(5)
        assert cur.position == 0
        assert cur.advance() == 1

    def test_set_order_without_restart_folds_position(self):
        cur = WSSCursor(5)
        for _ in range(20):
            cur.advance()
        cur.set_order(3, restart=False)
        assert 0 <= cur.position <= 6

    def test_order_property(self):
        cur = WSSCursor(6)
        assert cur.order == 6

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            WSSCursor(0)


class TestMaterialized:
    def test_matches_closed_form(self):
        m = MaterializedWSS(8)
        for i in range(1, 2**8):
            assert m.term(i) == wss_term(i)

    def test_len_and_storage(self):
        m = MaterializedWSS(6)
        assert len(m) == 63
        assert m.storage_entries == 63

    def test_refuses_huge_orders(self):
        with pytest.raises(ConfigurationError):
            MaterializedWSS(27)


class TestFolded:
    """The paper's space-time tradeoff (Section IV-B): serve a high-order
    sequence from a stored low-order table plus one extra operation."""

    @pytest.mark.parametrize("order,stored", [(8, 4), (8, 7), (10, 5), (13, 7)])
    def test_exact_equality_with_direct_sequence(self, order, stored):
        folded = FoldedWSS(order, stored)
        assert list(folded.sequence()) == wss_sequence(order)

    def test_storage_is_low_order(self):
        folded = FoldedWSS(16, 9)
        assert folded.storage_entries == 2**9 - 1

    def test_paper_example_32_from_17(self):
        # 32nd-order sequence from a 17th-order table: spot-check terms
        # without materialising 2^32 entries.
        folded = FoldedWSS(32, 17)
        assert folded.storage_entries == 2**17 - 1
        for position in [1, 2, 3, 2**16, 2**17, 2**17 + 1, 2**31, 2**32 - 1]:
            assert folded.term(position) == wss_term(position)

    @given(
        st.integers(min_value=2, max_value=20),
        st.data(),
    )
    @settings(max_examples=60)
    def test_random_positions_match(self, order, data):
        stored = data.draw(
            st.integers(min_value=(order + 1) // 2, max_value=order - 1)
        )
        position = data.draw(st.integers(min_value=1, max_value=2**order - 1))
        folded = FoldedWSS(order, stored)
        assert folded.term(position) == wss_term(position)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FoldedWSS(8, 8)  # stored must be smaller
        with pytest.raises(ConfigurationError):
            FoldedWSS(20, 5)  # order > 2 * stored
        folded = FoldedWSS(8, 5)
        with pytest.raises(ConfigurationError):
            folded.term(0)
        with pytest.raises(ConfigurationError):
            folded.term(2**8)
