"""Differential testing: optimized SRR vs a transparent reference model.

The production scheduler uses intrusive doubly-linked lists, a bitmask
order tracker, a cursor with unlink fix-ups, and the closed-form WSS.
This file re-implements the same semantics *transparently* — plain
Python lists for the columns, the materialised WSS sequence, explicit
index arithmetic — and hypothesis-checks that both produce IDENTICAL
service orders over random workloads. Any divergence of the optimized
data structures from the defining behaviour (flows enter column tails
when they become backlogged, leave when drained, the scan order restarts
when the matrix order changes) shows up here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Packet, SRRScheduler
from repro.core.wss import wss_sequence


class NaiveSRR:
    """SRR with no clever data structures (reference semantics)."""

    def __init__(self):
        self.flows = {}  # fid -> [weight, queued]
        self.columns = {}  # bit -> list of backlogged fids (tail append)
        self.order = 0
        self.position = 0
        self.cursor = None  # (column_list, next_index) during a column

    def add_flow(self, fid, weight):
        self.flows[fid] = [weight, 0]

    def _bits(self, weight):
        return [b for b in range(weight.bit_length()) if weight >> b & 1]

    def _enter(self, fid):
        for bit in self._bits(self.flows[fid][0]):
            self.columns.setdefault(bit, []).append(fid)

    def _leave(self, fid):
        for bit in self._bits(self.flows[fid][0]):
            column = self.columns[bit]
            index = column.index(fid)
            column.remove(fid)
            if self.cursor is not None and self.cursor[0] is column:
                if index < self.cursor[1]:
                    self.cursor = (column, self.cursor[1] - 1)

    def enqueue(self, fid):
        row = self.flows[fid]
        if row[1] == 0:
            self._enter(fid)
        row[1] += 1

    def dequeue(self):
        while True:
            if self.cursor is not None:
                column, index = self.cursor
                if index < len(column):
                    fid = column[index]
                    # Advancing past the final element ends the pass NOW
                    # (the production cursor sits on the tail sentinel,
                    # so a flow appended afterwards joins *before* it and
                    # is not visited in this pass).
                    if index + 1 < len(column):
                        self.cursor = (column, index + 1)
                    else:
                        self.cursor = None
                    row = self.flows[fid]
                    row[1] -= 1
                    if row[1] == 0:
                        self._leave(fid)
                    return fid
                self.cursor = None
            backlogged = [f for f, (w, q) in self.flows.items() if q > 0]
            if not backlogged:
                self.order = 0
                self.position = 0
                return None
            order = max(self.flows[f][0] for f in backlogged).bit_length()
            if order != self.order:
                self.order = order
                self.position = 0
            wss = wss_sequence(order)
            self.position = self.position % len(wss) + 1
            value = wss[self.position - 1]
            column = self.columns.setdefault(order - value, [])
            self.cursor = (column, 0)


@st.composite
def srr_script(draw):
    n_flows = draw(st.integers(min_value=1, max_value=6))
    weights = [
        draw(st.integers(min_value=1, max_value=31)) for _ in range(n_flows)
    ]
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["enq", "deq"]),
                st.integers(min_value=0, max_value=n_flows - 1),
            ),
            max_size=150,
        )
    )
    return weights, ops


class TestDifferential:
    @given(srr_script())
    @settings(max_examples=150, deadline=None)
    def test_identical_service_order(self, script):
        weights, ops = script
        real = SRRScheduler()
        model = NaiveSRR()
        for i, w in enumerate(weights):
            real.add_flow(i, w)
            model.add_flow(i, w)
        for op, fid in ops:
            if op == "enq":
                real.enqueue(Packet(fid, 100))
                model.enqueue(fid)
            else:
                got = real.dequeue()
                expected = model.dequeue()
                got_fid = got.flow_id if got is not None else None
                assert got_fid == expected
        for _ in range(sum(w for w in weights) * 40):
            got = real.dequeue()
            expected = model.dequeue()
            got_fid = got.flow_id if got is not None else None
            assert got_fid == expected
            if got is None:
                break

    def test_paper_example_through_model(self):
        """The Section III-C flow set, through the reference model,
        matches the paper's printed SRR sequence (sanity for the model
        itself, independent of the production code)."""
        model = NaiveSRR()
        for i in range(7):
            model.add_flow(f"f{i}", 1)
        model.add_flow("f7", 2)
        model.add_flow("f8", 2)
        model.add_flow("f9", 4)
        for fid in list(model.flows):
            for _ in range(8):
                model.enqueue(fid)
        got = [model.dequeue() for _ in range(15)]
        assert got == [
            "f9", "f7", "f8", "f9",
            "f0", "f1", "f2", "f3", "f4", "f5", "f6",
            "f9", "f7", "f8", "f9",
        ]
