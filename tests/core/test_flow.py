"""Tests for repro.core.flow (FlowState, weight validation, bit iteration)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidWeightError
from repro.core.flow import FlowState, check_weight, iter_set_bits
from repro.core.packet import Packet


class TestCheckWeight:
    def test_accepts_positive_ints(self):
        assert check_weight(1) == 1
        assert check_weight(2**40) == 2**40

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", None, True, False])
    def test_rejects_non_positive_and_non_int(self, bad):
        with pytest.raises(InvalidWeightError):
            check_weight(bad)

    def test_rejects_oversized(self):
        with pytest.raises(InvalidWeightError):
            check_weight(1 << 63)


class TestIterSetBits:
    def test_examples(self):
        assert list(iter_set_bits(0)) == []
        assert list(iter_set_bits(1)) == [0]
        assert list(iter_set_bits(6)) == [1, 2]
        assert list(iter_set_bits(0b10110010)) == [1, 4, 5, 7]

    @given(st.integers(min_value=0, max_value=2**60))
    def test_reconstructs_value(self, v):
        assert sum(1 << b for b in iter_set_bits(v)) == v


class TestFlowState:
    def test_nodes_match_weight_bits(self):
        f = FlowState("a", 13)  # 0b1101
        assert sorted(f.nodes) == [0, 2, 3]
        for bit, node in f.nodes.items():
            assert node.flow is f
            assert node.column == bit
            assert not node.linked

    def test_float_weight_mode_for_timestamp_schedulers(self):
        f = FlowState("w", 2.5, integer_weight=False)
        assert f.weight == 2.5
        assert f.nodes == {}

    def test_integer_mode_rejects_floats(self):
        with pytest.raises(InvalidWeightError):
            FlowState("a", 2.5)

    def test_offer_and_take_fifo_order(self):
        f = FlowState("a", 1)
        p1, p2 = Packet("a", 10), Packet("a", 20)
        assert f.offer(p1) and f.offer(p2)
        assert f.backlogged
        assert f.backlog_bytes == 30
        assert f.take() is p1
        assert f.take() is p2
        assert not f.backlogged

    def test_take_updates_counters(self):
        f = FlowState("a", 1)
        f.offer(Packet("a", 100))
        f.offer(Packet("a", 50))
        f.take()
        f.take()
        assert f.packets_sent == 2
        assert f.bytes_sent == 150

    def test_queue_limit_drops(self):
        f = FlowState("a", 1, max_queue=2)
        assert f.offer(Packet("a", 10))
        assert f.offer(Packet("a", 10))
        assert not f.offer(Packet("a", 10))
        assert f.packets_dropped == 1
        assert len(f.queue) == 2

    def test_head_size(self):
        f = FlowState("a", 1)
        f.offer(Packet("a", 77))
        f.offer(Packet("a", 99))
        assert f.head_size() == 77

    def test_in_matrix_initially_false(self):
        f = FlowState("a", 5)
        assert not f.in_matrix
