"""Tests for hierarchical link sharing (class tree of schedulers)."""

import pytest

from repro.core import (
    ConfigurationError,
    DuplicateFlowError,
    Packet,
    SRRScheduler,
    UnknownFlowError,
)
from repro.core.hierarchy import HierarchicalScheduler
from repro.schedulers import DRRScheduler, WFQScheduler


def make_two_class(root_w=(3, 1)):
    """Root SRR sharing 3:1 between 'voice' and 'data', SRR inside each."""
    h = HierarchicalScheduler(SRRScheduler())
    h.add_class("voice", root_w[0], scheduler=SRRScheduler())
    h.add_class("data", root_w[1], scheduler=SRRScheduler())
    return h


def drain_ids(h, limit=100000):
    out = []
    for _ in range(limit):
        p = h.dequeue()
        if p is None:
            break
        out.append(p.flow_id)
    return out


class TestStructure:
    def test_duplicate_class_rejected(self):
        h = make_two_class()
        with pytest.raises(ConfigurationError):
            h.add_class("voice", 1, scheduler=SRRScheduler())

    def test_flow_requires_class(self):
        h = make_two_class()
        with pytest.raises(ConfigurationError):
            h.add_flow("f", 1)
        with pytest.raises(ConfigurationError):
            h.add_flow("f", 1, class_id="nope")

    def test_duplicate_flow_rejected(self):
        h = make_two_class()
        h.add_flow("f", 1, class_id="voice")
        with pytest.raises(DuplicateFlowError):
            h.add_flow("f", 1, class_id="data")

    def test_unknown_flow_operations(self):
        h = make_two_class()
        with pytest.raises(UnknownFlowError):
            h.enqueue(Packet("ghost", 100))
        with pytest.raises(UnknownFlowError):
            h.remove_flow("ghost")

    def test_remove_class(self):
        h = make_two_class()
        h.add_flow("v1", 1, class_id="voice")
        h.enqueue(Packet("v1", 100))
        dropped = h.remove_class("voice")
        assert dropped == 1
        assert not h.has_flow("v1")
        with pytest.raises(ConfigurationError):
            h.child("voice")


class TestScheduling:
    def test_interclass_shares_follow_root_weights(self):
        h = make_two_class(root_w=(3, 1))
        h.add_flow("v1", 1, class_id="voice")
        h.add_flow("d1", 1, class_id="data")
        for i in range(400):
            h.enqueue(Packet("v1", 100, seq=i))
            h.enqueue(Packet("d1", 100, seq=i))
        seq = drain_ids(h, limit=400)
        assert seq.count("v1") / seq.count("d1") == pytest.approx(3.0, rel=0.05)

    def test_intraclass_shares_follow_child_weights(self):
        h = make_two_class(root_w=(1, 1))
        h.add_flow("a", 4, class_id="voice")
        h.add_flow("b", 1, class_id="voice")
        h.add_flow("d", 1, class_id="data")
        for i in range(500):
            h.enqueue(Packet("a", 100, seq=i))
            h.enqueue(Packet("b", 100, seq=i))
            h.enqueue(Packet("d", 100, seq=i))
        seq = drain_ids(h, limit=500)
        # Voice and data split 1:1; inside voice, a:b = 4:1.
        voice = seq.count("a") + seq.count("b")
        assert voice / seq.count("d") == pytest.approx(1.0, rel=0.1)
        assert seq.count("a") / seq.count("b") == pytest.approx(4.0, rel=0.15)

    def test_idle_class_yields_bandwidth(self):
        h = make_two_class(root_w=(3, 1))
        h.add_flow("d1", 1, class_id="data")
        for i in range(10):
            h.enqueue(Packet("d1", 100, seq=i))
        assert drain_ids(h) == ["d1"] * 10

    def test_work_conserving_and_counts(self):
        h = make_two_class()
        h.add_flow("v1", 2, class_id="voice")
        h.add_flow("d1", 1, class_id="data")
        for i in range(7):
            h.enqueue(Packet("v1", 100, seq=i))
        for i in range(5):
            h.enqueue(Packet("d1", 200, seq=i))
        assert h.backlog == 12
        assert h.backlog_bytes == 7 * 100 + 5 * 200
        out = drain_ids(h)
        assert len(out) == 12
        assert h.backlog == 0
        assert h.dequeue() is None

    def test_per_flow_fifo_preserved(self):
        h = make_two_class()
        h.add_flow("v1", 1, class_id="voice")
        packets = [Packet("v1", 100, seq=i) for i in range(5)]
        for p in packets:
            h.enqueue(p)
        got = [h.dequeue() for _ in range(5)]
        assert [p.seq for p in got] == [0, 1, 2, 3, 4]

    def test_mixed_disciplines(self):
        """WFQ between classes, DRR inside one, SRR inside the other."""
        h = HierarchicalScheduler(WFQScheduler())
        h.add_class("gold", 2.0, scheduler=DRRScheduler(quantum=200))
        h.add_class("silver", 1.0, scheduler=SRRScheduler())
        h.add_flow("g1", 1, class_id="gold")
        h.add_flow("s1", 1, class_id="silver")
        for i in range(300):
            h.enqueue(Packet("g1", 100, seq=i))
            h.enqueue(Packet("s1", 100, seq=i))
        seq = drain_ids(h, limit=300)
        assert seq.count("g1") / seq.count("s1") == pytest.approx(2.0, rel=0.1)

    def test_remove_flow_resyncs_tokens(self):
        h = make_two_class()
        h.add_flow("v1", 1, class_id="voice")
        h.add_flow("v2", 1, class_id="voice")
        h.add_flow("d1", 1, class_id="data")
        for i in range(4):
            h.enqueue(Packet("v1", 100, seq=i))
            h.enqueue(Packet("v2", 100, seq=i))
            h.enqueue(Packet("d1", 100, seq=i))
        dropped = h.remove_flow("v1")
        assert dropped == 4
        out = drain_ids(h)
        assert len(out) == 8
        assert "v1" not in out
        assert out.count("v2") == 4 and out.count("d1") == 4

    def test_flow_listing(self):
        h = make_two_class()
        h.add_flow("v1", 1, class_id="voice")
        h.add_flow("d1", 1, class_id="data")
        assert set(h.flow_ids()) == {"v1", "d1"}
        assert set(h.class_ids()) == {"voice", "data"}
        assert h.has_flow("v1") and not h.has_flow("x")
