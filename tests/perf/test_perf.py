"""The perf subsystem itself: document shape, regression gate, CLI.

The benchmark *numbers* are machine-dependent and are never asserted
here; what is tested is the machinery around them — stats math, the
pytest-benchmark document layout, :func:`repro.perf.compare`'s
regression semantics, and the ``python -m repro.perf`` plumbing — on
tiny synthetic benchmarks that run in milliseconds.
"""

import copy
import json

import pytest

from repro.perf import (
    Benchmark,
    all_benchmarks,
    build_document,
    compare,
    fastpath_speedup,
    run_benchmark,
    speedup_summary,
)
from repro.perf.benchmarks import _hold_round
from repro.perf.cli import main
from repro.perf.report import SCHEMA


def _tiny_bench(group="event_loop", name="tiny[heap]", engine="heap"):
    return Benchmark(
        group, name, {"engine": engine},
        lambda: _hold_round(engine, 50, 100),
        rounds=2, quick_rounds=1,
    )


def _doc(*results):
    return build_document(list(results))


class TestRunBenchmark:
    def test_rounds_and_work_items(self):
        result = run_benchmark(_tiny_bench())
        assert len(result.times) == 2
        assert result.work_items == 150  # population + churn
        assert all(t > 0 for t in result.times)
        assert result.throughput > 0

    def test_quick_shrinks_rounds_not_sizes(self):
        result = run_benchmark(_tiny_bench(), quick=True)
        assert len(result.times) == 1
        assert result.work_items == 150


class TestDocument:
    def test_pytest_benchmark_layout(self):
        doc = _doc(run_benchmark(_tiny_bench(), quick=True))
        assert doc["schema"] == SCHEMA
        assert set(doc) == {
            "schema", "datetime", "machine_info", "commit_info",
            "benchmarks",
        }
        (bench,) = doc["benchmarks"]
        assert bench["name"] == "tiny[heap]"
        assert bench["fullname"] == "repro.perf::tiny[heap]"
        assert bench["params"] == {"engine": "heap"}
        assert set(bench["stats"]) == {
            "min", "max", "mean", "stddev", "median", "rounds", "ops",
        }
        assert bench["stats"]["rounds"] == 1
        assert bench["stats"]["ops"] == pytest.approx(
            1.0 / bench["stats"]["mean"]
        )
        assert bench["extra_info"]["work_items"] == 150
        json.dumps(doc)  # must be JSON-serialisable as-is

    def test_stats_math(self):
        bench = _tiny_bench()
        result = run_benchmark(bench)
        result.times = [0.1, 0.3]  # deterministic stats
        (entry,) = _doc(result)["benchmarks"]
        stats = entry["stats"]
        assert stats["min"] == pytest.approx(0.1)
        assert stats["max"] == pytest.approx(0.3)
        assert stats["mean"] == pytest.approx(0.2)
        assert stats["median"] == pytest.approx(0.2)
        assert stats["stddev"] == pytest.approx(0.1414213562, rel=1e-6)

    def test_speedup_summary_ratio(self):
        fast = run_benchmark(_tiny_bench(name="t[calendar]",
                                         engine="calendar"), quick=True)
        slow = run_benchmark(_tiny_bench(), quick=True)
        fast.times, slow.times = [0.1], [0.2]
        summary = speedup_summary(_doc(slow, fast))
        assert summary == {"event_loop": pytest.approx(2.0)}

    def test_speedup_summary_needs_both_engines(self):
        only_heap = run_benchmark(_tiny_bench(), quick=True)
        assert speedup_summary(_doc(only_heap)) == {}

    def test_fastpath_speedup_compares_mean_round_times(self):
        # Object side = the calendar run; fast side = the engine-less
        # core:"fast" entry. Ratio is of mean times, not throughput.
        obj = Benchmark(
            "end_to_end", "e2e[calendar]", {"engine": "calendar"},
            lambda: _hold_round("heap", 50, 100), rounds=1, quick_rounds=1,
        )
        fast = Benchmark(
            "end_to_end", "e2e[fastpath]", {"core": "fast"},
            lambda: _hold_round("heap", 50, 100), rounds=1, quick_rounds=1,
        )
        r_obj = run_benchmark(obj, quick=True)
        r_fast = run_benchmark(fast, quick=True)
        r_obj.times, r_fast.times = [0.4], [0.1]
        doc = _doc(r_obj, r_fast)
        assert fastpath_speedup(doc) == {"end_to_end": pytest.approx(4.0)}
        # No heap+calendar pair in sight: the engine summary stays empty.
        assert speedup_summary(doc) == {}

    def test_fastpath_speedup_needs_both_cores(self):
        only_fast = Benchmark(
            "end_to_end", "e2e[fastpath]", {"core": "fast"},
            lambda: _hold_round("heap", 50, 100), rounds=1, quick_rounds=1,
        )
        assert fastpath_speedup(
            _doc(run_benchmark(only_fast, quick=True))
        ) == {}


class TestCompare:
    def _docs(self):
        result = run_benchmark(_tiny_bench(), quick=True)
        result.times = [1.0]
        base = _doc(result)
        return base, copy.deepcopy(base)

    def test_identical_runs_pass(self):
        base, now = self._docs()
        assert compare(now, base) == []

    def test_within_tolerance_passes(self):
        base, now = self._docs()
        now["benchmarks"][0]["stats"]["mean"] = 1.2
        assert compare(now, base, tolerance=1.25) == []

    def test_regression_beyond_tolerance_fails(self):
        base, now = self._docs()
        now["benchmarks"][0]["stats"]["mean"] = 1.3
        failures = compare(now, base, tolerance=1.25)
        assert len(failures) == 1
        assert "tiny[heap]" in failures[0]
        assert "1.30x" in failures[0]

    def test_speedup_never_fails(self):
        base, now = self._docs()
        now["benchmarks"][0]["stats"]["mean"] = 0.01
        assert compare(now, base) == []

    def test_missing_benchmark_fails(self):
        base, now = self._docs()
        now["benchmarks"] = []
        failures = compare(now, base)
        assert failures == ["tiny[heap]: missing from current run"]

    def test_extra_current_benchmarks_ignored(self):
        # New benchmarks without a baseline entry must not fail the
        # gate — that is how a baseline gets extended.
        base, now = self._docs()
        base["benchmarks"] = []
        assert compare(now, base) == []

    def test_tolerance_must_exceed_one(self):
        base, now = self._docs()
        with pytest.raises(ValueError):
            compare(now, base, tolerance=1.0)


class TestSuiteDefinition:
    def test_all_benchmarks_cover_the_four_groups(self):
        benches = all_benchmarks()
        groups = {b.group for b in benches}
        assert groups == {
            "event_loop", "scheduler_dequeue", "end_to_end",
            "shard_scaling",
        }
        names = [b.name for b in benches]
        assert len(names) == len(set(names))  # names are unique keys
        # Both engines appear in both engine-sensitive groups (the
        # flat-core lean-loop entry has no event queue, hence no
        # ``engine`` param — it is keyed by ``core`` instead).
        for group in ("event_loop", "end_to_end"):
            engines = {
                b.params["engine"] for b in benches
                if b.group == group and "engine" in b.params
            }
            assert engines == {"heap", "calendar"}
        # The flat-core benches ride along: scalar-datapath dequeues at
        # every sweep size plus the lean end-to-end replay.
        assert "e2e_srr_bottleneck[fastpath-n256]" in names
        for n in (16, 512, 4096):
            assert f"dequeue[srr:fast-n{n}]" in names
            assert f"dequeue[drr:fast-n{n}]" in names
        # The shard-scaling sweep includes the 1-shard reference every
        # speedup is computed against.
        shard_counts = {
            b.params["shards"] for b in benches
            if b.group == "shard_scaling"
        }
        assert shard_counts == {1, 2, 4}

    def test_shard_speedup_summary(self):
        from repro.perf.report import shard_speedup

        def fake(shards, mean):
            return {
                "group": "shard_scaling",
                "name": f"shard[s{shards}]",
                "params": {"shards": shards},
                "stats": {"mean": mean},
                "extra_info": {},
            }

        doc = {"benchmarks": [fake(1, 4.0), fake(2, 2.0), fake(4, 1.0)]}
        assert shard_speedup(doc) == {2: 2.0, 4: 4.0}
        # No 1-shard reference -> no ratios.
        assert shard_speedup(
            {"benchmarks": [fake(4, 1.0)]}
        ) == {}


class TestCli:
    def test_group_run_writes_comparable_baseline(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        # A real (tiny-rounds) run of the event_loop group only.
        assert main(["--quick", "--group", "event_loop",
                     "--output", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == SCHEMA
        assert {b["group"] for b in doc["benchmarks"]} == {"event_loop"}
        err = capsys.readouterr().err
        assert "calendar vs heap [event_loop]" in err
        # Same machine, same code, generous tolerance: must pass its
        # own baseline.
        assert main(["--quick", "--group", "event_loop",
                     "--baseline", str(out), "--tolerance", "4.0"]) == 0

    def test_baseline_regression_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["--quick", "--group", "event_loop",
                     "--output", str(out)]) == 0
        doc = json.loads(out.read_text())
        for bench in doc["benchmarks"]:
            bench["stats"]["mean"] /= 1e6  # impossible-to-beat baseline
        out.write_text(json.dumps(doc))
        assert main(["--quick", "--group", "event_loop",
                     "--baseline", str(out)]) == 1
        assert "regression" in capsys.readouterr().err.lower()

    def test_json_flag_prints_document(self, capsys):
        assert main(["--quick", "--group", "event_loop", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == SCHEMA
