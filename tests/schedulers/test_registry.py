"""Tests for the scheduler registry."""

import pytest

from repro.core import ConfigurationError, SRRScheduler
from repro.schedulers import (
    available_schedulers,
    create_scheduler,
    register_scheduler,
)


class TestRegistry:
    def test_all_builtins_present(self):
        names = available_schedulers()
        for expected in ["srr", "drr", "wrr", "rr", "fifo", "wfq", "scfq",
                         "stfq", "wf2q+"]:
            assert expected in names

    def test_create_by_name(self):
        s = create_scheduler("srr")
        assert isinstance(s, SRRScheduler)

    def test_kwargs_passed_through(self):
        s = create_scheduler("srr", mode="deficit", quantum=900)
        assert s.mode == "deficit"
        assert s.quantum == 900
        d = create_scheduler("drr", quantum=512)
        assert d.quantum == 512

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(ConfigurationError, match="available"):
            create_scheduler("nope")

    def test_register_custom(self):
        class Custom(SRRScheduler):
            name = "custom-srr"

        register_scheduler("custom-srr", Custom)
        try:
            assert isinstance(create_scheduler("custom-srr"), Custom)
            assert "custom-srr" in available_schedulers()
        finally:
            # Keep the registry clean for other tests.
            from repro.schedulers import registry

            del registry._REGISTRY["custom-srr"]

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scheduler("", SRRScheduler)
