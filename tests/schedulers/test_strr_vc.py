"""Behavioural tests for Stratified Round Robin and Virtual Clock."""

import pytest

from repro.core import Packet
from repro.schedulers import StratifiedRRScheduler, VirtualClockScheduler


def drain_ids(sched, limit=100000):
    out = []
    for _ in range(limit):
        p = sched.dequeue()
        if p is None:
            break
        out.append(p.flow_id)
    return out


def load(sched, flows, n, size=200):
    for fid in flows:
        for i in range(n):
            sched.enqueue(Packet(fid, size, seq=i))


class TestStratifiedRR:
    def test_equal_weights_alternate(self):
        s = StratifiedRRScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        load(s, "ab", 10)
        seq = drain_ids(s)
        # Same stratum, equal credits: near-perfect alternation.
        runs = max(
            len(list(g))
            for g in _runs(seq)
        )
        assert runs <= 2

    def test_weighted_share_across_strata(self):
        s = StratifiedRRScheduler()
        s.add_flow("w3", 3)
        s.add_flow("w1", 1)
        load(s, ["w3"], 1500)
        load(s, ["w1"], 500)
        count = {"w3": 0, "w1": 0}
        for _ in range(1200):
            count[s.dequeue().flow_id] += 1
        assert count["w3"] / count["w1"] == pytest.approx(3.0, rel=0.1)

    def test_stratification(self):
        s = StratifiedRRScheduler()
        s.add_flow("big", 8)
        s.add_flow("small", 1)
        s.enqueue(Packet("big", 200))
        s.enqueue(Packet("small", 200))
        pops = s.class_populations()
        # Two different strata are in use.
        assert len(pops) == 2

    def test_low_rate_flow_interval_matches_stratum(self):
        """The published latency shape: a continuously backlogged
        low-rate flow is served once per ~(total/weight) slots — its
        class interval — so the gap grows inversely with its rate."""
        s = StratifiedRRScheduler()
        s.add_flow("heavy", 64)
        s.add_flow("tiny", 1)
        load(s, ["heavy"], 600)
        load(s, ["tiny"], 10)
        seq = drain_ids(s, limit=400)
        positions = [i for i, f in enumerate(seq) if f == "tiny"]
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert gaps, "tiny never re-served"
        # Interval ~ 65 slots (total weight / tiny's weight).
        assert 40 <= sum(gaps) / len(gaps) <= 90

    def test_drained_class_goes_quiet(self):
        s = StratifiedRRScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 16)
        load(s, ["a"], 2)
        load(s, ["b"], 50)
        seq = drain_ids(s)
        assert seq.count("a") == 2
        assert seq.count("b") == 50

    def test_flow_removal_mid_backlog(self):
        s = StratifiedRRScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        load(s, "ab", 5)
        s.dequeue()
        s.remove_flow("a")
        rest = drain_ids(s)
        assert all(f == "b" for f in rest)

    def test_rejects_nonpositive_weight(self):
        s = StratifiedRRScheduler()
        with pytest.raises(Exception):
            s.add_flow("a", 0)


class TestVirtualClock:
    def test_weighted_share(self):
        s = VirtualClockScheduler()
        s.add_flow("w2", 2.0)
        s.add_flow("w1", 1.0)
        load(s, ["w2"], 600)
        load(s, ["w1"], 300)
        count = {"w2": 0, "w1": 0}
        for _ in range(600):
            count[s.dequeue().flow_id] += 1
        assert count["w2"] / count["w1"] == pytest.approx(2.0, rel=0.1)

    def test_idle_flow_builds_no_credit(self):
        """The classic Virtual Clock property: a flow that was idle gets
        stamps from its *own* clock, so without real arrival times it can
        be punished for past bursts — unlike WFQ where V(t) resets the
        reference. Driven directly (enqueued_at = 0) the effect is
        visible as pure per-flow accumulation."""
        s = VirtualClockScheduler()
        s.add_flow("bursty", 1.0)
        s.add_flow("steady", 1.0)
        # bursty sends 20 packets first, alone.
        load(s, ["bursty"], 20)
        for _ in range(20):
            s.dequeue()
        # Now both have a packet; bursty's clock is far ahead.
        s.enqueue(Packet("bursty", 200))
        s.enqueue(Packet("steady", 200))
        assert s.dequeue().flow_id == "steady"

    def test_arrival_time_resets_clock(self):
        s = VirtualClockScheduler()
        s.add_flow("a", 1.0)
        p1 = Packet("a", 200)
        p1.enqueued_at = 0.0
        s.enqueue(p1)
        s.dequeue()
        late = Packet("a", 200)
        late.enqueued_at = 1e6  # long idle: clock jumps to arrival
        s.enqueue(late)
        assert s.flow_state("a").finish_tag == pytest.approx(1e6 + 200)


def _runs(seq):
    current = []
    for x in seq:
        if current and current[-1] != x:
            yield current
            current = []
        current.append(x)
    if current:
        yield current
