"""Behavioural tests for the timestamp schedulers (WFQ, SCFQ, STFQ, WF²Q+)."""

import pytest

from repro.core import OpCounter, Packet
from repro.schedulers import (
    SCFQScheduler,
    STFQScheduler,
    WF2QPlusScheduler,
    WFQScheduler,
)

TS = [WFQScheduler, SCFQScheduler, STFQScheduler, WF2QPlusScheduler]


def drain_ids(sched, limit=100000):
    out = []
    for _ in range(limit):
        p = sched.dequeue()
        if p is None:
            break
        out.append(p.flow_id)
    return out


@pytest.fixture(params=TS, ids=[c.name for c in TS])
def sched(request):
    return request.param()


class TestCommonTimestampBehaviour:
    def test_equal_weights_interleave(self, sched):
        sched.add_flow("a", 1)
        sched.add_flow("b", 1)
        for i in range(6):
            sched.enqueue(Packet("a", 100, seq=i))
            sched.enqueue(Packet("b", 100, seq=i))
        seq = drain_ids(sched)
        # Perfect alternation (up to which flow starts).
        for i in range(0, 12, 2):
            assert {seq[i], seq[i + 1]} == {"a", "b"}

    def test_weighted_interleave_2to1(self, sched):
        sched.add_flow("fast", 2.0)
        sched.add_flow("slow", 1.0)
        for i in range(20):
            sched.enqueue(Packet("fast", 100, seq=i))
        for i in range(10):
            sched.enqueue(Packet("slow", 100, seq=i))
        seq = drain_ids(sched, limit=15)
        assert seq.count("fast") / seq.count("slow") == pytest.approx(2, rel=0.3)

    def test_fractional_weights_accepted(self, sched):
        sched.add_flow("x", 0.25)
        sched.enqueue(Packet("x", 100))
        assert sched.dequeue().flow_id == "x"

    def test_virtual_time_resets_on_idle(self, sched):
        sched.add_flow("a", 1)
        sched.enqueue(Packet("a", 100))
        sched.dequeue()
        assert sched.virtual_time == 0.0

    def test_virtual_time_monotone_in_busy_period(self, sched):
        sched.add_flow("a", 1)
        sched.add_flow("b", 2)
        for i in range(10):
            sched.enqueue(Packet("a", 100, seq=i))
            sched.enqueue(Packet("b", 100, seq=i))
        last = 0.0
        for _ in range(15):
            sched.dequeue()
            assert sched.virtual_time >= last - 1e-12
            last = sched.virtual_time

    def test_small_packets_do_not_monopolise(self, sched):
        """A flow sending many small packets must not beat an equal-weight
        flow sending large ones in *bytes* (byte-normalised tags)."""
        sched.add_flow("small", 1)
        sched.add_flow("large", 1)
        for i in range(150):
            sched.enqueue(Packet("small", 100, seq=i))
        for i in range(15):
            sched.enqueue(Packet("large", 1000, seq=i))
        sent = {"small": 0, "large": 0}
        for _ in range(100):
            p = sched.dequeue()
            sent[p.flow_id] += p.size
        assert sent["small"] / sent["large"] == pytest.approx(1.0, rel=0.25)


class TestWFQSpecific:
    def test_isolated_flow_meets_gps_finish_order(self):
        """With weights 3:1 and equal sizes, WFQ must serve 3 of the heavy
        flow per 1 of the light one, never falling behind GPS by more than
        one packet."""
        s = WFQScheduler()
        s.add_flow("h", 3.0)
        s.add_flow("l", 1.0)
        for i in range(30):
            s.enqueue(Packet("h", 100, seq=i))
        for i in range(10):
            s.enqueue(Packet("l", 100, seq=i))
        seq = drain_ids(s)
        # In any prefix, h-count >= 3 * l-count - 3 (one-packet slack).
        h = l = 0
        for fid in seq:
            if fid == "h":
                h += 1
            else:
                l += 1
            assert h >= 3 * l - 3

    def test_gps_clock_advances_with_departures(self):
        s = WFQScheduler()
        s.add_flow("a", 1.0)
        s.add_flow("b", 1.0)
        s.enqueue(Packet("a", 100))
        s.enqueue(Packet("b", 100))
        s.dequeue()
        # After 100 bytes served with 2 backlogged unit-weight flows, the
        # GPS clock sits at 50 virtual units.
        assert s.virtual_time == pytest.approx(50.0)

    def test_gps_iterated_deletion(self):
        """When one flow's GPS backlog ends mid-transmission the clock
        accelerates (fewer sharers)."""
        s = WFQScheduler()
        s.add_flow("a", 1.0)
        s.add_flow("b", 1.0)
        s.enqueue(Packet("a", 100))
        s.enqueue(Packet("b", 300))
        s.dequeue()  # a's 100B packet (F=100) is served first
        # GPS: both active until V=100 (costs 200 real bytes)... but only
        # 100 real bytes elapsed, so V = 50 and both still active.
        assert s.virtual_time == pytest.approx(50.0)
        s.dequeue()  # b's 300B packet; backlog empties -> busy period ends
        assert s.virtual_time == 0.0

    def test_late_arrival_gets_current_vtime(self):
        s = WFQScheduler()
        s.add_flow("a", 1.0)
        s.add_flow("late", 1.0)
        for i in range(4):
            s.enqueue(Packet("a", 100, seq=i))
        s.dequeue()
        v = s.virtual_time
        assert v > 0
        s.enqueue(Packet("late", 100))
        # late's stamp starts at the current V, so it interleaves with a's
        # HOL packet (ties allowed) instead of queueing behind a's whole
        # backlog of three remaining packets.
        next_two = [s.dequeue().flow_id, s.dequeue().flow_id]
        assert "late" in next_two


class TestWF2QSpecific:
    def test_eligibility_prevents_run_ahead(self):
        """WFQ may serve a heavy flow's whole round back-to-back; WF²Q+
        must not serve packet k+1 of a flow before GPS would have started
        it. With w=10 vs 1 and equal sizes, WF²Q+ interleaves instead of
        bursting the first 10."""
        s = WF2QPlusScheduler()
        s.add_flow("h", 10.0)
        s.add_flow("l", 1.0)
        for i in range(20):
            s.enqueue(Packet("h", 100, seq=i))
        for i in range(2):
            s.enqueue(Packet("l", 100, seq=i))
        seq = drain_ids(s, limit=12)
        assert "l" in seq[:12]  # the light flow is not starved for a round

    def test_wf2q_share_exact(self):
        s = WF2QPlusScheduler()
        s.add_flow("a", 3.0)
        s.add_flow("b", 1.0)
        for i in range(300):
            s.enqueue(Packet("a", 100, seq=i))
        for i in range(100):
            s.enqueue(Packet("b", 100, seq=i))
        seq = drain_ids(s, limit=200)
        assert seq.count("a") / seq.count("b") == pytest.approx(3.0, rel=0.1)


class TestComplexityShape:
    def test_wfq_ops_grow_with_n(self):
        """The point of the paper: timestamp schedulers pay per-packet
        costs that grow with N; SRR does not (compared in E5)."""

        def cost(n):
            ops = OpCounter()
            s = WFQScheduler(op_counter=ops)
            for i in range(n):
                s.add_flow(i, 1.0)
            for i in range(n):
                s.enqueue(Packet(i, 100))
            ops.reset()
            served = 0
            while s.dequeue() is not None:
                served += 1
            return ops.count / served

        assert cost(2048) > cost(32) * 1.4
