"""Interleaved WRR semantics (the ``iwrr`` discipline).

IWRR serves a round of *cycles*: cycle ``c`` sends one packet from every
backlogged flow whose weight is at least ``c``, so a weight-``w`` flow
still gets ``w`` packets per round but interleaved with its competitors
instead of as one consecutive burst (arXiv 2003.08372). These tests pin
the observable contract: the first-round interleaving order, per-round
service counts, the at-most-one-packet-per-cycle invariant, credit
forfeiture on drain, and clean removal/rejoin behaviour. Bit-level
object-vs-fast equivalence is covered in ``tests/fastpath``.
"""

import pytest

from repro.core.packet import Packet
from repro.schedulers.registry import create_scheduler


def load(sched, counts, size=100):
    for fid, n in counts.items():
        for _ in range(n):
            sched.enqueue(Packet(fid, size))


def drain_ids(sched, n=None):
    out = []
    while n is None or len(out) < n:
        p = sched.dequeue()
        if p is None:
            break
        out.append(p.flow_id)
    return out


class TestInterleaving:
    def test_first_round_interleaves_where_wrr_bursts(self):
        """a(w=2), b(w=1): WRR sends ``a a b``, IWRR ``a b a`` — cycle 1
        serves both flows, cycle 2 only the weight-2 one."""
        iwrr = create_scheduler("iwrr")
        wrr = create_scheduler("wrr")
        for s in (iwrr, wrr):
            s.add_flow("a", 2)
            s.add_flow("b", 1)
            load(s, {"a": 3, "b": 3})
        assert drain_ids(iwrr, 3) == ["a", "b", "a"]
        assert drain_ids(wrr, 3) == ["a", "a", "b"]

    def test_per_round_counts_match_weights(self):
        """Every 7-service window of a saturated {4,2,1} mix serves each
        flow exactly its weight (rounds may rotate who leads)."""
        sched = create_scheduler("iwrr")
        for fid, w in (("a", 4), ("b", 2), ("c", 1)):
            sched.add_flow(fid, w)
        load(sched, {"a": 20, "b": 10, "c": 5})
        served = drain_ids(sched)
        assert len(served) == 35
        for start in range(0, 35, 7):
            window = served[start:start + 7]
            assert window.count("a") == 4
            assert window.count("b") == 2
            assert window.count("c") == 1

    def test_no_consecutive_burst_in_saturated_mix(self):
        """With weights {3, 3, 2} every cycle serves at least two flows,
        so IWRR never sends the same flow back-to-back — where WRR's
        round for the same weights is the burst train ``aaabbbcc``."""
        sched = create_scheduler("iwrr")
        for fid, w in (("a", 3), ("b", 3), ("c", 2)):
            sched.add_flow(fid, w)
        load(sched, {"a": 9, "b": 9, "c": 6})
        served = drain_ids(sched)
        assert len(served) == 24
        assert all(x != y for x, y in zip(served, served[1:]))
        # And each 8-service round still honours the weights exactly.
        for start in range(0, 24, 8):
            window = served[start:start + 8]
            assert (window.count("a"), window.count("b"),
                    window.count("c")) == (3, 3, 2)


class TestCreditLifecycle:
    def test_drained_flow_forfeits_remaining_credit(self):
        sched = create_scheduler("iwrr")
        sched.add_flow("a", 4)
        sched.add_flow("b", 1)
        load(sched, {"a": 1, "b": 3})
        # a drains after one packet; its 3 unused credits die with it,
        # b then owns the link.
        assert drain_ids(sched) == ["a", "b", "b", "b"]

    def test_rejoining_flow_gets_fresh_credit(self):
        sched = create_scheduler("iwrr")
        sched.add_flow("a", 2)
        sched.add_flow("b", 2)
        load(sched, {"a": 1})
        assert drain_ids(sched) == ["a"]
        # Re-backlogging after idling must grant a full allocation.
        load(sched, {"a": 4, "b": 4})
        served = drain_ids(sched)
        assert served.count("a") == 4 and served.count("b") == 4
        assert sorted(served[:4].count(f) for f in "ab") == [2, 2]

    def test_single_flow_serves_fifo(self):
        sched = create_scheduler("iwrr")
        sched.add_flow("a", 3)
        sizes = [100, 200, 300, 400]
        for s in sizes:
            sched.enqueue(Packet("a", s))
        assert [sched.dequeue().size for _ in sizes] == sizes
        assert sched.dequeue() is None


class TestFlowChurn:
    def test_remove_flow_mid_round(self):
        sched = create_scheduler("iwrr")
        for fid in ("a", "b", "c"):
            sched.add_flow(fid, 2)
        load(sched, {"a": 4, "b": 4, "c": 4})
        first = [sched.dequeue().flow_id for _ in range(2)]
        assert first == ["a", "b"]
        assert sched.remove_flow("b") == 3  # three queued packets dropped
        rest = drain_ids(sched)
        assert "b" not in rest
        assert rest.count("a") == 3 and rest.count("c") == 4
        assert sched.backlog == 0

    def test_weights_must_be_integers(self):
        from repro.core.errors import InvalidWeightError

        sched = create_scheduler("iwrr")
        with pytest.raises(InvalidWeightError):
            sched.add_flow("x", 1.5)

    def test_empty_dequeue_returns_none(self):
        sched = create_scheduler("iwrr")
        assert sched.dequeue() is None
        sched.add_flow("a", 1)
        assert sched.dequeue() is None
