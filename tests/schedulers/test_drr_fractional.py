"""DRR fractional-weight credit: the truncation-livelock regression.

The original implementation granted ``int(weight * quantum)`` bytes per
visit — zero forever when ``weight * quantum < 1`` — so a fractional-
weight flow was never served and ``dequeue()`` span in the rotate loop
unboundedly once every other flow had drained. Credit is now accumulated
exactly; these tests pin the fix for single- and multi-flow cases and the
``MIN_VISIT_CREDIT`` rejection of pathologically small grants.
"""

import pytest

from repro.core import ConfigurationError, Packet
from repro.core.opcount import OpCounter
from repro.schedulers import create_scheduler
from repro.schedulers.drr import MIN_VISIT_CREDIT


def drain(sched, limit=100000):
    out = []
    for _ in range(limit):
        p = sched.dequeue()
        if p is None:
            break
        out.append(p)
    return out


class TestFractionalCredit:
    def test_single_fractional_flow_drains(self):
        # weight * quantum = 0.6 bytes/visit: int() truncation would
        # grant 0 forever; exact accumulation serves a packet every
        # ~334 visits.
        sched = create_scheduler("drr", quantum=1500)
        sched.add_flow("thin", 0.0004)
        for _ in range(3):
            assert sched.enqueue(Packet("thin", 200))
        served = drain(sched)
        assert [p.size for p in served] == [200, 200, 200]
        assert sched.backlog == 0

    def test_fractional_flow_not_starved_among_integer_flows(self):
        sched = create_scheduler("drr", quantum=1500)
        sched.add_flow("fat", 4.0)
        sched.add_flow("thin", 0.0004)
        for _ in range(10):
            sched.enqueue(Packet("fat", 1500))
        for _ in range(2):
            sched.enqueue(Packet("thin", 200))
        served = drain(sched)
        assert sum(1 for p in served if p.flow_id == "thin") == 2
        assert sched.backlog == 0

    def test_dequeue_work_is_bounded_per_packet(self):
        # The rotate loop must terminate: ops per packet bounded by
        # ~quantum / (weight * quantum) rotations, not infinite.
        counter = OpCounter()
        sched = create_scheduler("drr", quantum=1500, op_counter=counter)
        sched.add_flow("thin", 0.01)        # 15 bytes of credit per visit
        sched.enqueue(Packet("thin", 1500))
        before = counter.count
        assert sched.dequeue() is not None
        assert counter.count - before < 500  # ~100 visits expected

    def test_credit_resets_when_flow_idles(self):
        sched = create_scheduler("drr", quantum=1500)
        sched.add_flow("f", 0.5)
        sched.enqueue(Packet("f", 100))
        assert sched.dequeue().size == 100
        # Shreedhar-Varghese: leftover credit must not survive idling.
        assert sched.flow_state("f").deficit == 0

    def test_fairness_ratio_respected_over_long_run(self):
        sched = create_scheduler("drr", quantum=1500)
        sched.add_flow("a", 0.3)
        sched.add_flow("b", 0.1)
        for _ in range(80):
            sched.enqueue(Packet("a", 300))
            sched.enqueue(Packet("b", 300))
        served = drain(sched)
        first = served[: len(served) // 2]
        a = sum(p.size for p in first if p.flow_id == "a")
        b = sum(p.size for p in first if p.flow_id == "b")
        assert a / b == pytest.approx(3.0, rel=0.35)


class TestMinVisitCredit:
    def test_rejects_pathologically_small_grant(self):
        sched = create_scheduler("drr", quantum=1500)
        with pytest.raises(ConfigurationError):
            sched.add_flow("dust", MIN_VISIT_CREDIT / 3000.0)

    def test_rejection_leaves_no_half_registered_flow(self):
        sched = create_scheduler("drr", quantum=1500)
        with pytest.raises(ConfigurationError):
            sched.add_flow("dust", 1e-12)
        assert sched.flow_count == 0
        # The same id can be registered with a sane weight afterwards.
        sched.add_flow("dust", 1.0)
        sched.enqueue(Packet("dust", 100))
        assert sched.dequeue().size == 100
