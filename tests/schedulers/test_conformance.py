"""Interface-conformance tests run against EVERY scheduler in the registry.

These pin down the contract the network simulator relies on: work
conservation, exact backlog accounting, FIFO order within a flow, queue
limits, flow add/remove semantics, and robustness to random operation
sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.extensions  # noqa: F401 - registers "rrr" and "g3"
from repro.core import DuplicateFlowError, Packet, UnknownFlowError
from repro.schedulers import available_schedulers, create_scheduler

ALL = available_schedulers()


def make(name):
    return create_scheduler(name)


def drain(sched, limit=100000):
    out = []
    for _ in range(limit):
        p = sched.dequeue()
        if p is None:
            break
        out.append(p)
    return out


@pytest.fixture(params=ALL)
def sched(request):
    return make(request.param)


class TestBasicContract:
    def test_empty_dequeue_returns_none(self, sched):
        sched.add_flow("a", 1)
        assert sched.dequeue() is None

    def test_single_packet_roundtrip(self, sched):
        sched.add_flow("a", 1)
        p = Packet("a", 100)
        assert sched.enqueue(p)
        got = sched.dequeue()
        assert got is p
        assert sched.dequeue() is None

    def test_work_conserving(self, sched):
        for i in range(4):
            sched.add_flow(i, i + 1)
        n = 0
        for i in range(4):
            for j in range(5):
                sched.enqueue(Packet(i, 100 + 10 * i, seq=j))
                n += 1
        got = drain(sched)
        assert len(got) == n
        assert sched.backlog == 0
        assert sched.backlog_bytes == 0

    def test_per_flow_fifo_order(self, sched):
        sched.add_flow("a", 2)
        sched.add_flow("b", 3)
        for i in range(10):
            sched.enqueue(Packet("a", 100, seq=i))
            sched.enqueue(Packet("b", 100, seq=i))
        got = drain(sched)
        for fid in ("a", "b"):
            seqs = [p.seq for p in got if p.flow_id == fid]
            assert seqs == sorted(seqs)

    def test_backlog_accounting(self, sched):
        sched.add_flow("a", 1)
        sched.add_flow("b", 1)
        sched.enqueue(Packet("a", 111))
        sched.enqueue(Packet("b", 222))
        assert sched.backlog == 2
        assert sched.backlog_bytes == 333
        assert len(sched) == 2
        sched.dequeue()
        assert sched.backlog == 1
        drain(sched)
        assert sched.is_idle

    def test_unknown_flow_enqueue_raises(self, sched):
        with pytest.raises(UnknownFlowError):
            sched.enqueue(Packet("ghost", 10))

    def test_duplicate_flow_raises(self, sched):
        sched.add_flow("a", 1)
        with pytest.raises(DuplicateFlowError):
            sched.add_flow("a", 1)

    def test_remove_flow_returns_drop_count(self, sched):
        sched.add_flow("a", 1)
        sched.add_flow("b", 1)
        for i in range(3):
            sched.enqueue(Packet("a", 100, seq=i))
        sched.enqueue(Packet("b", 100))
        assert sched.remove_flow("a") == 3
        assert not sched.has_flow("a")
        assert sched.backlog == 1
        got = drain(sched)
        assert [p.flow_id for p in got] == ["b"]

    def test_remove_unknown_flow_raises(self, sched):
        with pytest.raises(UnknownFlowError):
            sched.remove_flow("ghost")

    def test_queue_limit(self, sched):
        sched.add_flow("a", 1, max_queue=3)
        results = [sched.enqueue(Packet("a", 10)) for _ in range(5)]
        assert results == [True, True, True, False, False]
        assert sched.backlog == 3

    def test_flow_ids_listing(self, sched):
        sched.add_flow("x", 1)
        sched.add_flow("y", 2)
        assert set(sched.flow_ids()) == {"x", "y"}
        assert sched.has_flow("x")
        assert not sched.has_flow("z")

    def test_readd_flow_after_removal(self, sched):
        sched.add_flow("a", 1)
        sched.enqueue(Packet("a", 10))
        sched.remove_flow("a")
        sched.add_flow("a", 2)
        sched.enqueue(Packet("a", 10))
        assert sched.dequeue().flow_id == "a"

    def test_interleaved_enqueue_dequeue(self, sched):
        sched.add_flow("a", 1)
        sched.add_flow("b", 2)
        sched.enqueue(Packet("a", 10))
        assert sched.dequeue().flow_id == "a"
        sched.enqueue(Packet("b", 10))
        sched.enqueue(Packet("a", 10))
        got = drain(sched)
        assert {p.flow_id for p in got} == {"a", "b"}


class TestRandomisedConservation:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["enq", "deq", "deq", "enq"]),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=40, max_value=1500),
            ),
            max_size=150,
        ),
        st.sampled_from(ALL),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_packet_lost_or_duplicated(self, ops, name):
        sched = make(name)
        weights = [1, 2, 3, 5]
        for i in range(4):
            sched.add_flow(i, weights[i])
        pushed, popped = [], []
        for op, fid, size in ops:
            if op == "enq":
                p = Packet(fid, size)
                if sched.enqueue(p):
                    pushed.append(p.uid)
            else:
                p = sched.dequeue()
                if p is not None:
                    popped.append(p.uid)
        popped.extend(p.uid for p in drain(sched))
        assert sorted(popped) == sorted(pushed)
        assert sched.backlog == 0


class TestLongRunWeightedShare:
    """All weighted disciplines must deliver long-run service proportional
    to weights under constant backlog (equal packet sizes)."""

    # Exclusion by base name so fast-core twins (e.g. "rr:fast") inherit
    # their object core's weighted/unweighted classification.
    WEIGHTED = [n for n in ALL if n.split(":")[0] not in ("fifo", "rr")]

    @pytest.mark.parametrize("name", WEIGHTED)
    def test_share_ratio(self, name):
        sched = make(name)
        sched.add_flow("w3", 3)
        sched.add_flow("w1", 1)
        for i in range(3000):
            sched.enqueue(Packet("w3", 100, seq=i))
        for i in range(1200):
            sched.enqueue(Packet("w1", 100, seq=i))
        count = {"w3": 0, "w1": 0}
        for _ in range(2000):
            p = sched.dequeue()
            assert p is not None
            count[p.flow_id] += 1
        assert count["w3"] / count["w1"] == pytest.approx(3.0, rel=0.1)
