"""Behavioural tests for FIFO, RR, WRR and DRR."""

import pytest

from repro.core import ConfigurationError, Packet
from repro.schedulers import (
    DRRScheduler,
    FIFOScheduler,
    RoundRobinScheduler,
    WRRScheduler,
)


def drain_ids(sched, limit=10000):
    out = []
    for _ in range(limit):
        p = sched.dequeue()
        if p is None:
            break
        out.append(p.flow_id)
    return out


class TestFIFO:
    def test_strict_arrival_order(self):
        s = FIFOScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 9)  # weight ignored
        order = []
        for i in range(6):
            fid = "a" if i % 2 == 0 else "b"
            s.enqueue(Packet(fid, 100, seq=i))
            order.append(fid)
        assert drain_ids(s) == order

    def test_no_isolation(self):
        """A flooding flow starves the polite one — FIFO's failure mode."""
        s = FIFOScheduler()
        s.add_flow("flood", 1)
        s.add_flow("polite", 1)
        for i in range(50):
            s.enqueue(Packet("flood", 1500, seq=i))
        s.enqueue(Packet("polite", 100))
        first_50 = drain_ids(s, limit=50)
        assert first_50 == ["flood"] * 50


class TestRoundRobin:
    def test_cycles_equally(self):
        s = RoundRobinScheduler()
        for fid in "abc":
            s.add_flow(fid, 1)
        for fid in "abc":
            for i in range(3):
                s.enqueue(Packet(fid, 100, seq=i))
        assert drain_ids(s) == list("abcabcabc")

    def test_ignores_weights(self):
        s = RoundRobinScheduler()
        s.add_flow("a", 10)
        s.add_flow("b", 1)
        for fid in "ab":
            for i in range(5):
                s.enqueue(Packet(fid, 100, seq=i))
        seq = drain_ids(s)
        assert seq[:6] == ["a", "b", "a", "b", "a", "b"]

    def test_drained_flow_leaves_rotation(self):
        s = RoundRobinScheduler()
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        s.enqueue(Packet("a", 100))
        for i in range(3):
            s.enqueue(Packet("b", 100, seq=i))
        assert drain_ids(s) == ["a", "b", "b", "b"]


class TestWRR:
    def test_serves_weight_consecutively(self):
        """The defining (bursty) behaviour SRR smooths out."""
        s = WRRScheduler()
        s.add_flow("big", 4)
        s.add_flow("small", 1)
        for i in range(8):
            s.enqueue(Packet("big", 100, seq=i))
        for i in range(2):
            s.enqueue(Packet("small", 100, seq=i))
        assert drain_ids(s) == [
            "big", "big", "big", "big", "small",
            "big", "big", "big", "big", "small",
        ]

    def test_integer_weights_required(self):
        s = WRRScheduler()
        with pytest.raises(Exception):
            s.add_flow("a", 1.5)

    def test_forfeits_credit_when_drained(self):
        s = WRRScheduler()
        s.add_flow("a", 5)
        s.add_flow("b", 1)
        s.enqueue(Packet("a", 100))  # only 1 of 5 credits usable
        s.enqueue(Packet("b", 100))
        assert drain_ids(s) == ["a", "b"]
        # New burst: credit was reset, not carried.
        for i in range(5):
            s.enqueue(Packet("a", 100, seq=i))
        s.enqueue(Packet("b", 100))
        assert drain_ids(s) == ["a"] * 5 + ["b"]

    def test_remove_head_flow_mid_burst(self):
        s = WRRScheduler()
        s.add_flow("a", 3)
        s.add_flow("b", 1)
        for i in range(3):
            s.enqueue(Packet("a", 100, seq=i))
        s.enqueue(Packet("b", 100))
        assert s.dequeue().flow_id == "a"  # burst begun
        s.remove_flow("a")
        assert drain_ids(s) == ["b"]


class TestDRR:
    def test_byte_fairness_with_mixed_sizes(self):
        s = DRRScheduler(quantum=1500)
        s.add_flow("jumbo", 1)
        s.add_flow("tiny", 1)
        for i in range(100):
            s.enqueue(Packet("jumbo", 1500, seq=i))
        for i in range(1500):
            s.enqueue(Packet("tiny", 100, seq=i))
        sent = {"jumbo": 0, "tiny": 0}
        for _ in range(500):
            p = s.dequeue()
            sent[p.flow_id] += p.size
        assert sent["jumbo"] / sent["tiny"] == pytest.approx(1.0, rel=0.1)

    def test_weighted_quanta(self):
        s = DRRScheduler(quantum=500)
        s.add_flow("w3", 3)
        s.add_flow("w1", 1)
        for i in range(400):
            s.enqueue(Packet("w3", 500, seq=i))
            s.enqueue(Packet("w1", 500, seq=i))
        counts = {"w3": 0, "w1": 0}
        for _ in range(400):
            counts[s.dequeue().flow_id] += 1
        assert counts["w3"] / counts["w1"] == pytest.approx(3.0, rel=0.05)

    def test_deficit_carries_across_rounds(self):
        # Quantum 300 < packet 1000: three rounds accumulate enough credit.
        s = DRRScheduler(quantum=300)
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        for i in range(2):
            s.enqueue(Packet("a", 1000, seq=i))
        for i in range(20):
            s.enqueue(Packet("b", 100, seq=i))
        seq = drain_ids(s)
        assert seq.count("a") == 2
        # 'a' needs 4 visits (4 * 300 = 1200 >= 1000) before first send.
        assert seq.index("a") > 0

    def test_deficit_reset_on_drain(self):
        s = DRRScheduler(quantum=10000)
        s.add_flow("a", 1)
        s.enqueue(Packet("a", 100))
        s.dequeue()
        assert s.flow_state("a").deficit == 0

    def test_burstiness_grows_with_quantum(self):
        """DRR sends a flow's whole per-round allocation contiguously."""
        s = DRRScheduler(quantum=1000)
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        for i in range(40):
            s.enqueue(Packet("a", 100, seq=i))
            s.enqueue(Packet("b", 100, seq=i))
        seq = drain_ids(s, limit=40)
        # Runs of ~10 packets (1000/100) per flow.
        longest = cur = 1
        for x, y in zip(seq, seq[1:]):
            cur = cur + 1 if x == y else 1
            longest = max(longest, cur)
        assert longest >= 10

    def test_invalid_quantum(self):
        with pytest.raises(ConfigurationError):
            DRRScheduler(quantum=0)
