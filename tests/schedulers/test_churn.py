"""Churn fuzzing: random flow add/remove under live traffic, all schedulers.

The conformance suite covers static flow sets; these tests stress the
control path (registration/removal while packets are queued and the
scheduler is mid-round) and check global invariants against a reference
model:

* conservation — every dequeued packet was enqueued, exactly once, and
  belongs to a currently registered flow;
* accounting — the scheduler's backlog equals the model's at all times;
* liveness — a backlogged scheduler always yields a packet.
"""

import random

import pytest

import repro.extensions  # noqa: F401
from repro.core import AdmissionError, Packet
from repro.schedulers import available_schedulers, create_scheduler

ALL = available_schedulers()

#: Per-scheduler construction kwargs and weight cap for the fuzz.
CONFIG = {
    "g3": ({"capacity": 255}, 8),
    "rrr": ({"capacity": 256}, 8),
}


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_churn_invariants(name, seed):
    kwargs, weight_cap = CONFIG.get(name, ({}, 9))
    rng = random.Random(seed * 1000 + hash(name) % 997)
    sched = create_scheduler(name, **kwargs)

    model = {}  # flow_id -> list of queued packet uids (FIFO)
    next_flow = 0
    dequeued = set()
    enqueued = set()

    for step in range(600):
        action = rng.random()
        flows = list(model)
        if action < 0.15 or not flows:
            # Add a flow.
            fid = f"f{next_flow}"
            next_flow += 1
            weight = rng.randint(1, weight_cap)
            try:
                sched.add_flow(fid, weight)
            except AdmissionError:
                continue  # slotted scheduler full; fine
            model[fid] = []
        elif action < 0.25 and len(flows) > 1:
            # Remove a random flow (possibly backlogged, possibly the
            # one the scan cursor points at).
            fid = rng.choice(flows)
            dropped = sched.remove_flow(fid)
            assert dropped == len(model[fid]), (name, fid)
            del model[fid]
        elif action < 0.65:
            fid = rng.choice(flows)
            p = Packet(fid, rng.choice([64, 200, 1500]))
            assert sched.enqueue(p)
            model[fid].append(p.uid)
            enqueued.add(p.uid)
        else:
            expected_backlog = sum(len(q) for q in model.values())
            p = sched.dequeue()
            if expected_backlog == 0:
                assert p is None, (name, "packet from empty scheduler")
            else:
                assert p is not None, (name, "idle despite backlog")
                assert p.flow_id in model, (name, "served removed flow")
                # Per-flow FIFO: must be that flow's head.
                assert model[p.flow_id][0] == p.uid
                model[p.flow_id].pop(0)
                assert p.uid not in dequeued, (name, "duplicate service")
                dequeued.add(p.uid)
        assert sched.backlog == sum(len(q) for q in model.values()), (
            name, step,
        )

    # Drain completely; everything left in the model must come out.
    remaining = sum(len(q) for q in model.values())
    for _ in range(remaining):
        p = sched.dequeue()
        assert p is not None
        model[p.flow_id].pop(0)
    assert sched.dequeue() is None
    assert sched.backlog == 0
    assert dequeued <= enqueued


@pytest.mark.parametrize("seed", [11, 13])
def test_g3_churn_keeps_structural_invariants(seed):
    """G-3 specific: allocator/TArray cross-consistency under churn."""
    rng = random.Random(seed)
    sched = create_scheduler("g3", capacity=63)
    live = {}
    for step in range(200):
        if live and rng.random() < 0.4:
            fid = rng.choice(list(live))
            sched.remove_flow(fid)
            del live[fid]
        else:
            fid = f"f{step}"
            weight = rng.randint(1, 16)
            try:
                sched.add_flow(fid, weight)
            except AdmissionError:
                continue
            live[fid] = weight
        sched.check_invariants()
    # After a defragment, at most one free block per size class in each
    # tree (the paper's shaping invariant).
    sched.defragment()
    sched.check_invariants()
    for tree in sched.trees.values():
        for e in range(tree.exponent + 1):
            assert len(tree.allocator.free_blocks(e)) <= 1


@pytest.mark.parametrize("seed", [7, 8])
def test_srr_deficit_churn(seed):
    """Deficit mode under churn: byte accounting never drifts."""
    rng = random.Random(seed)
    sched = create_scheduler("srr", mode="deficit", quantum=1500)
    for i in range(6):
        sched.add_flow(i, rng.randint(1, 7))
    queued_bytes = 0
    for _ in range(800):
        if rng.random() < 0.6:
            size = rng.choice([64, 500, 1500])
            sched.enqueue(Packet(rng.randrange(6), size))
            queued_bytes += size
        else:
            p = sched.dequeue()
            if p is not None:
                queued_bytes -= p.size
        assert sched.backlog_bytes == queued_bytes
    while True:
        p = sched.dequeue()
        if p is None:
            break
        queued_bytes -= p.size
    assert queued_bytes == 0
