"""SRR ``deficit`` mode: DRR equivalence and the stuck-flow path.

When every SRR flow carries the same power-of-two weight, the weight
matrix has a single populated column, so each WSS round visits the flows
cyclically in insertion order — exactly DRR's rotation — and each visit
grants ``quantum`` bytes, exactly DRR's grant at weight 1. The two
disciplines must therefore produce identical service orders.
"""

import pytest

from repro.core import Packet
from repro.schedulers import create_scheduler


def drain(sched, limit=100000):
    out = []
    for _ in range(limit):
        p = sched.dequeue()
        if p is None:
            break
        out.append(p)
    return out


def service_order(sched):
    return [(p.flow_id, p.size) for p in drain(sched)]


@pytest.mark.parametrize("column_weight", [1, 2, 8])
@pytest.mark.parametrize("sizes", [
    (200,), (1500,), (40, 1500, 576, 200),
])
def test_single_column_srr_deficit_equals_drr(column_weight, sizes):
    quantum = 1500
    srr = create_scheduler("srr", mode="deficit", quantum=quantum)
    drr = create_scheduler("drr", quantum=quantum)
    for i in range(4):
        srr.add_flow(f"f{i}", column_weight)
        drr.add_flow(f"f{i}", 1.0)
    # Identical preloaded backlogs (insertion order fixes both rotations).
    k = 0
    for i in range(4):
        for _ in range(5):
            size = sizes[k % len(sizes)]
            k += 1
            srr.enqueue(Packet(f"f{i}", size))
            drr.enqueue(Packet(f"f{i}", size))
    assert service_order(srr) == service_order(drr)


def test_mid_run_arrivals_preserve_equivalence():
    srr = create_scheduler("srr", mode="deficit", quantum=1500)
    drr = create_scheduler("drr", quantum=1500)
    for i in range(3):
        srr.add_flow(f"f{i}", 4)
        drr.add_flow(f"f{i}", 1.0)
    script = [("enq", 0, 500), ("enq", 1, 500), ("deq",), ("enq", 2, 1500),
              ("enq", 0, 200), ("deq",), ("deq",), ("enq", 1, 40),
              ("deq",), ("deq",)]
    got = {"srr": [], "drr": []}
    for name, sched in (("srr", srr), ("drr", drr)):
        for op in script:
            if op[0] == "enq":
                sched.enqueue(Packet(f"f{op[1]}", op[2]))
            else:
                p = sched.dequeue()
                got[name].append(None if p is None
                                 else (p.flow_id, p.size))
        got[name].extend(service_order(sched))
    assert got["srr"] == got["drr"]


class TestStuckFlow:
    def test_stuck_flow_keeps_the_link_until_credit_runs_out(self):
        # One visit grants 1500B; three 400B packets fit in one grant, so
        # they depart back-to-back via the stuck path (no extra visit).
        sched = create_scheduler("srr", mode="deficit", quantum=1500)
        sched.add_flow("f", 1)
        sched.add_flow("g", 1)
        for _ in range(3):
            sched.enqueue(Packet("f", 400))
            sched.enqueue(Packet("g", 400))
        first_three = [sched.dequeue().flow_id for _ in range(3)]
        assert first_three == ["f", "f", "f"]

    def test_stuck_flow_drains_cleanly(self):
        sched = create_scheduler("srr", mode="deficit", quantum=1500)
        sched.add_flow("f", 1)
        for _ in range(3):
            sched.enqueue(Packet("f", 200))
        assert [p.size for p in drain(sched)] == [200, 200, 200]
        # Credit must not survive idling (the paper's DRR-style rule).
        assert sched.flow_state("f").deficit == 0
        assert sched.backlog == 0

    def test_removing_stuck_flow_between_dequeues_is_safe(self):
        sched = create_scheduler("srr", mode="deficit", quantum=1500)
        sched.add_flow("f", 1)
        sched.add_flow("g", 1)
        for _ in range(3):
            sched.enqueue(Packet("f", 300))
        sched.enqueue(Packet("g", 300))
        p = sched.dequeue()
        assert p.flow_id == "f"
        assert sched._stuck is not None          # f holds leftover credit
        sched.remove_flow("f")
        assert sched._stuck is None
        served = drain(sched)
        assert [q.flow_id for q in served] == ["g"]
        assert sched.backlog == 0

    def test_stuck_flow_survives_other_flow_removal(self):
        sched = create_scheduler("srr", mode="deficit", quantum=1500)
        sched.add_flow("f", 1)
        sched.add_flow("g", 1)
        for _ in range(2):
            sched.enqueue(Packet("f", 300))
        sched.enqueue(Packet("g", 300))
        assert sched.dequeue().flow_id == "f"    # f stuck with 1200B left
        sched.remove_flow("g")
        served = drain(sched)
        assert [q.flow_id for q in served] == ["f"]
        assert sched.backlog == 0
