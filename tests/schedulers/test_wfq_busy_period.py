"""WFQ busy-period edge cases: same-id churn and virtual-time hygiene.

The GPS bookkeeping used to track busy flows by flow id alone. A flow
removed and re-registered under the same id mid-busy-period would then
let the *old* flow's stale heap entries pass the membership test:
iterated deletion popped them, evicted the *new* flow's membership and
subtracted the *old* weight from the GPS weight sum — corrupting the
virtual clock for the rest of the busy period. Membership is now keyed
by object identity; these tests pin that and the busy-period reset.
"""

import pytest

from repro.core import Packet
from repro.schedulers import create_scheduler


def gps_weight_invariant(sched):
    """_gps_weight must equal the member flows' summed weights."""
    expected = sum(f.weight for f in sched._gps_members.values())
    assert sched._gps_weight == pytest.approx(expected, abs=1e-9)
    return sched._gps_weight


def drain(sched, limit=100000):
    out = []
    for _ in range(limit):
        p = sched.dequeue()
        if p is None:
            break
        out.append(p)
    return out


class TestSameIdChurnMidBusyPeriod:
    def test_remove_and_readd_same_id_keeps_gps_weight_consistent(self):
        sched = create_scheduler("wfq")
        sched.add_flow("a", 1.0)
        sched.add_flow("b", 2.0)
        for _ in range(4):
            sched.enqueue(Packet("a", 500))
            sched.enqueue(Packet("b", 500))
        assert sched.dequeue() is not None          # busy period underway
        sched.remove_flow("b")
        gps_weight_invariant(sched)
        sched.add_flow("b", 3.0)                    # same id, new object
        for _ in range(3):
            sched.enqueue(Packet("b", 400))
        gps_weight_invariant(sched)
        served = drain(sched)
        # Everything still queued departs; the re-added flow is served.
        assert sum(1 for p in served if p.flow_id == "b") == 3
        assert sched.backlog == 0

    def test_stale_entries_cannot_evict_new_member(self):
        sched = create_scheduler("wfq")
        sched.add_flow("a", 1.0)
        sched.add_flow("b", 1.0)
        for _ in range(6):
            sched.enqueue(Packet("a", 1000))
        sched.enqueue(Packet("b", 100))
        assert sched.dequeue() is not None
        old_b = sched.flow_state("b")
        sched.remove_flow("b")
        sched.add_flow("b", 1.0)
        sched.enqueue(Packet("b", 100))
        new_b = sched.flow_state("b")
        assert new_b is not old_b
        # Force iterated deletion across the old flow's stale horizon.
        while sched.backlog:
            sched.dequeue()
            gps_weight_invariant(sched)
        assert sched._gps_weight == 0.0

    def test_churn_loop_never_corrupts_weight_sum(self):
        sched = create_scheduler("wfq")
        sched.add_flow("keep", 1.0)
        for round_ in range(12):
            sched.enqueue(Packet("keep", 300))
            sched.add_flow("churn", 0.5 + 0.25 * (round_ % 3))
            sched.enqueue(Packet("churn", 200))
            if round_ % 2 == 0:
                sched.dequeue()
            sched.remove_flow("churn")
            w = gps_weight_invariant(sched)
            assert w >= 0.0
        drain(sched)
        assert sched._gps_weight == 0.0


class TestBusyPeriodReset:
    def test_full_drain_resets_clock_stamps_and_membership(self):
        sched = create_scheduler("wfq")
        sched.add_flow("a", 0.3)
        sched.add_flow("b", 0.7)
        for _ in range(5):
            sched.enqueue(Packet("a", 700))
            sched.enqueue(Packet("b", 700))
        drain(sched)
        assert sched.virtual_time == 0.0
        assert sched._gps_weight == 0.0
        assert sched._gps_members == {}
        assert sched.flow_state("a").finish_tag == 0.0
        assert sched.flow_state("b").finish_tag == 0.0

    def test_long_busy_period_vtime_stays_finite_and_monotone(self):
        # Fractional weights make every stamp update inexact; over a long
        # busy period the clock must stay monotone and bounded by the
        # total normalised work, not drift off to infinity.
        sched = create_scheduler("wfq")
        sched.add_flow("a", 1.0 / 3.0)
        sched.add_flow("b", 1.0 / 7.0)
        sched.enqueue(Packet("a", 997))
        sched.enqueue(Packet("b", 997))
        last = sched.virtual_time
        total_work = 2 * 997
        for i in range(4000):
            sched.enqueue(Packet("a", 997))
            sched.enqueue(Packet("b", 997))
            total_work += 2 * 997
            assert sched.dequeue() is not None
            now = sched.virtual_time
            assert now >= last
            last = now
        # vtime advances at 1/weight_sum per byte at most (weight sum is
        # smallest when one flow remains): generous envelope.
        assert last <= total_work / min(1.0 / 3.0, 1.0 / 7.0) + 1.0
        drain(sched)
        assert sched.virtual_time == 0.0

    def test_fairness_after_many_same_id_churns(self):
        # End-to-end check that churned ids do not skew service shares.
        sched = create_scheduler("wfq")
        sched.add_flow("a", 3.0)
        sched.add_flow("b", 1.0)
        for i in range(6):
            sched.enqueue(Packet("a", 400))
            sched.enqueue(Packet("b", 400))
            sched.dequeue()
            sched.remove_flow("b")
            sched.add_flow("b", 1.0)
        for _ in range(20):
            sched.enqueue(Packet("a", 400))
            sched.enqueue(Packet("b", 400))
        served = drain(sched)
        half = served[: len(served) // 2]
        a = sum(1 for p in half if p.flow_id == "a")
        b = sum(1 for p in half if p.flow_id == "b")
        assert a > b  # weight-3 flow leads despite the churn history
