"""Tests for the op-counting binary heap used by the timestamp schedulers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OpCounter
from repro.schedulers._heap import CountingHeap


class TestCountingHeap:
    def test_sorts(self):
        h = CountingHeap()
        values = [5, 3, 8, 1, 9, 2, 7, 4, 6, 0]
        for v in values:
            h.push(v)
        assert [h.pop() for _ in range(10)] == sorted(values)

    def test_peek_does_not_remove(self):
        h = CountingHeap()
        h.push(3)
        h.push(1)
        assert h.peek() == 1
        assert len(h) == 2
        assert h.pop() == 1

    def test_len_and_bool(self):
        h = CountingHeap()
        assert not h
        h.push(1)
        assert h and len(h) == 1
        h.pop()
        assert not h

    def test_clear(self):
        h = CountingHeap()
        for v in range(5):
            h.push(v)
        h.clear()
        assert len(h) == 0

    def test_duplicates(self):
        h = CountingHeap()
        for v in [2, 2, 1, 1, 3, 3]:
            h.push(v)
        assert [h.pop() for _ in range(6)] == [1, 1, 2, 2, 3, 3]

    @given(st.lists(st.integers(), max_size=200))
    @settings(max_examples=60)
    def test_property_heapsort(self, values):
        h = CountingHeap()
        for v in values:
            h.push(v)
            h.check_invariant()
        out = [h.pop() for _ in range(len(values))]
        assert out == sorted(values)

    def test_interleaved_push_pop_invariant(self):
        rng = random.Random(42)
        h = CountingHeap()
        mirror = []
        for _ in range(500):
            if mirror and rng.random() < 0.45:
                assert h.pop() == mirror.pop(0)
            else:
                v = rng.randint(0, 100)
                h.push(v)
                mirror.append(v)
                mirror.sort()
            h.check_invariant()

    def test_ops_counted_logarithmically(self):
        """Sift cost must grow ~log n — this is what makes the WFQ-family
        op counts honest in experiment E5."""

        def cost(n):
            ops = OpCounter()
            h = CountingHeap(op_counter=ops)
            for v in range(n):
                h.push((v * 7919) % n)  # scrambled order
            ops.reset()
            for _ in range(n):
                h.pop()
            return ops.count / n

        small, large = cost(64), cost(4096)
        assert large > small * 1.5  # grows with n
        assert large < small * 4  # but only logarithmically

    def test_tuple_entries(self):
        h = CountingHeap()
        h.push((2.5, 1, "b"))
        h.push((1.5, 2, "a"))
        assert h.pop()[2] == "a"
