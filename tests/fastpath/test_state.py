"""FlowLanes ring-buffer edge cases: wraparound, growth under bursts,
drain-to-empty rejoin, and slot recycling under flow churn.

Every mutation sequence finishes with ``check_ring`` — the invariant
helper that verifies power-of-two capacity, cursor bounds, byte totals,
and that vacant ring positions do not pin payload references.
"""

import pytest

from repro.core.errors import UnknownFlowError
from repro.fastpath.state import MIN_RING_CAPACITY, FlowLanes


def drain_all(lanes, slot):
    out = []
    while lanes.q_count[slot]:
        out.append(lanes.pop(slot))
    return out


class TestRingWraparound:
    def test_wrap_without_growth(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 1)
        # Fill, then interleave pops and pushes so the cursor laps the
        # ring several times without ever needing a growth copy.
        for i in range(MIN_RING_CAPACITY):
            assert lanes.push(slot, 100 + i, ("ref", i))
        nxt = MIN_RING_CAPACITY
        popped = []
        for _ in range(5 * MIN_RING_CAPACITY):
            popped.append(lanes.pop(slot))
            assert lanes.push(slot, 100 + nxt, ("ref", nxt))
            nxt += 1
            lanes.check_ring(slot)
        popped.extend(drain_all(lanes, slot))
        assert lanes.ring_growths == 0
        assert [ref for _size, ref in popped] == [
            ("ref", i) for i in range(nxt)
        ]
        assert [size for size, _ref in popped] == [
            100 + i for i in range(nxt)
        ]

    def test_head_size_follows_wrap(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 1)
        for i in range(MIN_RING_CAPACITY):
            lanes.push(slot, 10 + i, None)
        for i in range(MIN_RING_CAPACITY - 1):
            assert lanes.head_size(slot) == 10 + i
            lanes.pop(slot)
        # Head is now at the last physical index; the next push wraps to
        # index 0 while head_size still reads the pre-wrap element.
        lanes.push(slot, 99, None)
        assert lanes.head_size(slot) == 10 + MIN_RING_CAPACITY - 1
        lanes.check_ring(slot)


class TestRingGrowth:
    def test_burst_growth_doubles_capacity(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 1)
        n = 1000
        for i in range(n):
            lanes.push(slot, i + 1, i)
            lanes.check_ring(slot)
        assert lanes.q_cap[slot] == 1024
        assert lanes.ring_growths == 7  # 8 -> 1024 is seven doublings
        assert [ref for _s, ref in drain_all(lanes, slot)] == list(range(n))

    def test_growth_unrolls_wrapped_ring(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 1)
        # Advance the head so the full ring wraps, then force a growth:
        # the copy must unroll head..tail into the fresh ring in order.
        for i in range(MIN_RING_CAPACITY):
            lanes.push(slot, 1, ("old", i))
        for _ in range(3):
            lanes.pop(slot)
        for i in range(3):
            lanes.push(slot, 1, ("new", i))
        assert lanes.q_head[slot] == 3  # wrapped state, ring full
        lanes.push(slot, 1, ("grow", 0))
        assert lanes.q_cap[slot] == 2 * MIN_RING_CAPACITY
        assert lanes.q_head[slot] == 0
        lanes.check_ring(slot)
        refs = [ref for _s, ref in drain_all(lanes, slot)]
        assert refs == (
            [("old", i) for i in range(3, MIN_RING_CAPACITY)]
            + [("new", i) for i in range(3)]
            + [("grow", 0)]
        )

    def test_growth_preserves_byte_accounting(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 1)
        sizes = [7, 40, 1500, 9, 200, 64, 3, 11, 999, 2]
        for s in sizes:
            lanes.push(slot, s, None)
        assert lanes.q_bytes[slot] == sum(sizes)
        lanes.check_ring(slot)


class TestDrainAndRejoin:
    def test_drain_to_empty_leaves_no_pinned_refs(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 1)
        sentinel = object()
        for _ in range(5):
            lanes.push(slot, 100, sentinel)
        drain_all(lanes, slot)
        assert lanes.q_count[slot] == 0
        assert lanes.q_bytes[slot] == 0
        # check_ring asserts every vacant position holds None — a popped
        # payload must be collectable immediately.
        lanes.check_ring(slot)
        assert all(r is None for r in lanes.q_ref[slot])

    def test_rejoin_after_drain(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 1)
        for round_no in range(4):
            for i in range(6):
                lanes.push(slot, 50, (round_no, i))
            got = [ref for _s, ref in drain_all(lanes, slot)]
            assert got == [(round_no, i) for i in range(6)]
            lanes.check_ring(slot)


class TestSlotChurn:
    def test_free_with_queued_packets_reports_drops(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 2)
        for i in range(5):
            lanes.push(slot, 100, i)
        assert lanes.free(slot) == 5
        assert "a" not in lanes.slot_of
        assert lanes.fids[slot] is None

    def test_freed_slot_is_recycled_clean(self):
        lanes = FlowLanes()
        a = lanes.alloc("a", 2)
        b = lanes.alloc("b", 3)
        for i in range(20):  # force a growth so the big ring is reused
            lanes.push(a, 100, ("a", i))
        lanes.free(a)
        c = lanes.alloc("c", 7, max_queue=4)
        assert c == a  # LIFO free-list recycling
        assert lanes.weight[c] == 7
        assert lanes.max_queue[c] == 4
        assert lanes.q_count[c] == 0
        assert lanes.q_bytes[c] == 0
        assert lanes.packets_sent[c] == 0
        assert lanes.q_cap[c] >= 32  # ring storage survives the tenant
        lanes.check_ring(c)
        assert lanes.slot_of == {"b": b, "c": c}
        assert lanes.live_slots() == sorted([b, c])

    def test_interleaved_churn_keeps_invariants(self):
        lanes = FlowLanes()
        slots = {}
        for gen in range(6):
            for k in range(4):
                fid = (gen, k)
                slots[fid] = lanes.alloc(fid, k + 1)
                for i in range(3 * gen + 1):
                    lanes.push(slots[fid], 10 * (i + 1), i)
                lanes.check_ring(slots[fid])
            # Tear down half, keeping the rest queued.
            for k in (0, 2):
                lanes.free(slots.pop((gen, k)))
        assert lanes.flow_count == len(slots)
        for fid, slot in slots.items():
            assert lanes.slot_of[fid] == slot
            lanes.check_ring(slot)

    def test_queue_limit_counts_drops(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 1, max_queue=3)
        results = [lanes.push(slot, 10, i) for i in range(5)]
        assert results == [True, True, True, False, False]
        assert lanes.packets_dropped[slot] == 2
        assert lanes.q_count[slot] == 3
        lanes.check_ring(slot)

    def test_lookup_unknown_raises(self):
        lanes = FlowLanes()
        with pytest.raises(UnknownFlowError):
            lanes.lookup("ghost")


class TestFlowView:
    def test_view_mirrors_columns(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 5, max_queue=100)
        lanes.push(slot, 70, "p0")
        lanes.push(slot, 30, "p1")
        from repro.fastpath.state import FlowView

        view = FlowView(lanes, slot)
        assert view.flow_id == "a"
        assert view.weight == 5
        assert view.max_queue == 100
        assert view.backlogged
        assert view.backlog_bytes == 100
        assert view.queue == ["p0", "p1"]
        assert view.head_size() == 70
        lanes.pop(slot)
        assert view.queue == ["p1"]
        assert view.packets_sent == 1
        assert view.bytes_sent == 70

    def test_unbounded_queue_reads_none(self):
        lanes = FlowLanes()
        slot = lanes.alloc("a", 1)
        from repro.fastpath.state import FlowView

        assert FlowView(lanes, slot).max_queue is None
