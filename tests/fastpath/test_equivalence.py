"""Differential object-vs-fast equivalence.

Each flat-core scheduler must be *bit-identical* to its object twin:
same accept/reject decisions, same service order (checked by packet
uid, so FIFO identity within flows is covered too), same backlog
accounting, same elementary-op counts, and — for SRR — the same number
of WSS terms scanned. The randomized churn drives add/remove/re-add,
queue limits, and both service modes.
"""

import random

import pytest

from repro.core.opcount import OpCounter
from repro.core.packet import Packet
from repro.schedulers.registry import create_scheduler

WEIGHTS = [1, 2, 3, 5, 8, 13, 64]

CONFIGS = [
    pytest.param("srr", "srr:fast", {"quantum": 200}, id="srr-packet"),
    pytest.param(
        "srr", "srr:fast", {"mode": "deficit", "quantum": 200},
        id="srr-deficit",
    ),
    pytest.param(
        "srr", "srr:fast",
        {"wss_storage": "materialized", "order_change": "continue"},
        id="srr-materialized-continue",
    ),
    pytest.param("drr", "drr:fast", {"quantum": 200}, id="drr"),
    pytest.param("wrr", "wrr:fast", {}, id="wrr"),
    pytest.param("iwrr", "iwrr:fast", {}, id="iwrr"),
    pytest.param("rr", "rr:fast", {}, id="rr"),
]


def build_pair(obj_name, fast_name, kwargs):
    obj_ops, fast_ops = OpCounter(), OpCounter()
    obj = create_scheduler(obj_name, op_counter=obj_ops, **kwargs)
    fast = create_scheduler(fast_name, op_counter=fast_ops, **kwargs)
    return obj, fast, obj_ops, fast_ops


@pytest.mark.parametrize("obj_name,fast_name,kwargs", CONFIGS)
@pytest.mark.parametrize("seed", range(8))
def test_randomized_churn_is_bit_identical(obj_name, fast_name, kwargs, seed):
    rng = random.Random(seed * 7919 + 13)
    obj, fast, obj_ops, fast_ops = build_pair(obj_name, fast_name, kwargs)

    flows = {}
    next_fid = 0

    def add_flow():
        nonlocal next_fid
        fid = f"f{next_fid}"
        next_fid += 1
        weight = rng.choice(WEIGHTS)
        limit = rng.choice([None, None, 4, 32])
        obj.add_flow(fid, weight, max_queue=limit)
        fast.add_flow(fid, weight, max_queue=limit)
        flows[fid] = weight

    for _ in range(rng.randint(2, 5)):
        add_flow()

    for step in range(300):
        r = rng.random()
        if r < 0.45 and flows:
            fid = rng.choice(sorted(flows))
            size = rng.randint(40, 1500)
            # Twin Packet objects share nothing but must be judged alike.
            a = obj.enqueue(Packet(fid, size))
            b = fast.enqueue(Packet(fid, size))
            assert a == b, f"step {step}: accept mismatch"
        elif r < 0.85:
            p_obj = obj.dequeue()
            p_fast = fast.dequeue()
            if p_obj is None:
                assert p_fast is None, f"step {step}: fast served extra"
            else:
                assert p_fast is not None, f"step {step}: fast went idle"
                assert (p_obj.flow_id, p_obj.size) == (
                    p_fast.flow_id, p_fast.size,
                ), f"step {step}: service order diverged"
        elif r < 0.93 and len(flows) > 1:
            fid = rng.choice(sorted(flows))
            assert obj.remove_flow(fid) == fast.remove_flow(fid)
            del flows[fid]
        else:
            add_flow()
        assert obj.backlog == fast.backlog
        assert obj.backlog_bytes == fast.backlog_bytes

    # Drain to empty and compare the tail order too.
    while True:
        p_obj, p_fast = obj.dequeue(), fast.dequeue()
        if p_obj is None:
            assert p_fast is None
            break
        assert (p_obj.flow_id, p_obj.size) == (p_fast.flow_id, p_fast.size)

    assert obj_ops.count == fast_ops.count, "op-count profiles diverged"
    if hasattr(obj, "terms_scanned"):
        assert obj.terms_scanned == fast.terms_scanned


@pytest.mark.parametrize("obj_name,fast_name,kwargs", CONFIGS)
def test_pull_batch_matches_object_dequeue_sequence(
    obj_name, fast_name, kwargs
):
    """The fused batch loop must serve exactly the per-call sequence."""
    rng = random.Random(99)
    obj, fast, _o, _f = build_pair(obj_name, fast_name, kwargs)
    for i, w in enumerate(WEIGHTS):
        obj.add_flow(i, w)
        fast.add_flow(i, w)
    for _ in range(400):
        fid = rng.randrange(len(WEIGHTS))
        size = rng.randint(40, 1500)
        obj.enqueue(Packet(fid, size))
        fast.push(fast.slot_of(fid), size)

    expected = []
    while True:
        p = obj.dequeue()
        if p is None:
            break
        expected.append((p.flow_id, p.size))

    got = []
    while True:
        batch = fast.pull_batch(7)  # odd budget: exercises partial fills
        if not batch:
            break
        got.extend(
            (fast.lanes.fids[slot], size) for slot, size, _ref in batch
        )
    assert got == expected
    assert fast.backlog == 0 and fast.backlog_bytes == 0


def test_materialized_wss_table_is_shared_across_instances():
    """``wss_storage="materialized"`` reads the process-wide memoised
    table from :mod:`repro.core.wss` — one copy per order, shared by
    every instance (object or fast), never rebuilt per scheduler."""
    a = create_scheduler("srr:fast", wss_storage="materialized")
    b = create_scheduler("srr:fast", wss_storage="materialized")
    for sched in (a, b):
        for i, w in enumerate((1, 2, 4)):
            sched.add_flow(i, w)
            sched.push(sched.slot_of(i), 100)
        while sched.pull() is not None:
            pass
    order = 3  # three columns occupied above
    assert order in a._wss_tables and order in b._wss_tables
    assert a._wss_tables[order] is b._wss_tables[order]
    from repro.core.wss import _materialized

    assert a._wss_tables[order] is _materialized(order)
