"""Flat-core fastpath tests: ring-buffer state, object-vs-fast
equivalence, engine/stats parity, and the lean bottleneck loop."""
