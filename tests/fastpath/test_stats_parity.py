"""Engine-stats parity across cores + the event-reuse audit.

The fastpath PR touched the engine's event lifecycle (``reschedule``)
and the port's transmit loop (single recycled tx event). These tests pin
down the audit: cancellation accounting (``pending_live`` /
``cancelled_reaped``), reuse preconditions, and — the regression test —
that a network run reports *identical* engine statistics and deliveries
whether the bottleneck runs the object or the flat core.
"""

import pytest

from repro.core.errors import SimulationError
from repro.bench.scenarios import single_bottleneck_network
from repro.net.engine import Simulator
from repro.net.eventq import ENGINE_ENV_VAR


class TestReschedule:
    def test_fired_event_is_reusable_with_fresh_seq(self):
        sim = Simulator(queue="heap")
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]
        assert event._sim is None
        seq_before = event.seq
        assert sim.reschedule(event, 0.5) is event
        assert event.seq > seq_before  # same counter schedule() uses
        sim.run()
        assert fired == [1.0, 1.5]

    def test_pending_event_cannot_be_rearmed(self):
        sim = Simulator(queue="heap")
        event = sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.reschedule(event, 0.5)

    def test_cancelled_event_is_never_reusable(self):
        # A cancelled-pending event still sits inside the queue, and a
        # cancelled-reaped one is indistinguishable from it — so both
        # refuse reuse.
        sim = Simulator(queue="heap")
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        with pytest.raises(SimulationError):
            sim.reschedule(event, 0.5)
        sim.run()  # reaps it
        assert sim.cancelled_reaped == 1
        with pytest.raises(SimulationError):
            sim.reschedule(event, 0.5)

    def test_negative_delay_rejected(self):
        sim = Simulator(queue="heap")
        event = sim.schedule(0.1, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.reschedule(event, -0.1)

    def test_pending_live_tracks_cancellations(self):
        sim = Simulator(queue="heap")
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        assert sim.pending_live == 2
        drop.cancel()
        assert sim.pending_events == 2  # still queued until reaped
        assert sim.pending_live == 1
        sim.run()
        assert sim.pending_events == 0
        assert sim.pending_live == 0
        assert sim.cancelled_reaped == 1
        assert keep._sim is None

    @pytest.mark.parametrize("kind", ["heap", "calendar"])
    def test_reuse_is_bit_identical_to_fresh_allocation(self, kind):
        """A self-rescheduling chain must interleave identically with a
        concurrent event stream whether it reuses one Event or allocates
        fresh ones — reschedule draws seq from the same counter."""

        def run(reuse: bool):
            sim = Simulator(queue=kind)
            order = []

            state = {"event": None, "n": 0}

            def chain():
                order.append(("chain", sim.now))
                state["n"] += 1
                if state["n"] >= 5:
                    return
                if reuse:
                    sim.reschedule(state["event"], 0.1)
                else:
                    state["event"] = sim.schedule(0.1, chain)

            def rival():
                order.append(("rival", sim.now))

            state["event"] = sim.schedule(0.1, chain)
            for i in range(1, 6):
                # Same timestamps as the chain: tie order is seq order.
                sim.schedule_at(i * 0.1, rival)
            sim.run()
            stats = sim.stats()
            return order, {
                k: stats[k]
                for k in (
                    "events_processed", "cancelled_reaped",
                    "max_heap_depth", "pending_events", "pending_live",
                )
            }

        fresh_order, fresh_stats = run(reuse=False)
        reuse_order, reuse_stats = run(reuse=True)
        assert reuse_order == fresh_order
        assert reuse_stats == fresh_stats


class TestCrossCoreStatsParity:
    """The satellite regression test: a bottleneck network must report
    identical engine counters, scheduler telemetry, and deliveries on
    the object and flat cores (the tx-event recycling and the fastpath's
    own bookkeeping are both exercised here)."""

    N_FLOWS = 16
    UNTIL = 0.5

    def _run(self, scheduler, engine, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, engine)
        net = single_bottleneck_network(scheduler, self.N_FLOWS)
        net.run(until=self.UNTIL)
        stats = net.engine_stats()
        engine_keys = {
            k: stats[k]
            for k in (
                "events_processed", "cancelled_reaped", "max_heap_depth",
                "pending_events", "pending_live",
            )
        }
        deliveries = {
            fid: (rec.packets, rec.bytes, rec.delays())
            for fid, rec in sorted(net.sinks.flows.items())
        }
        sched = net.port("R", "dst").scheduler
        return engine_keys, deliveries, sched

    @pytest.mark.parametrize("engine", ["heap", "calendar"])
    def test_object_and_fast_cores_agree(self, engine, monkeypatch):
        obj_stats, obj_dlv, obj_sched = self._run("srr", engine, monkeypatch)
        fast_stats, fast_dlv, fast_sched = self._run(
            "srr:fast", engine, monkeypatch
        )
        assert fast_stats == obj_stats
        assert fast_dlv == obj_dlv
        assert fast_sched.terms_scanned == obj_sched.terms_scanned
        # Sanity: the run did real work, so the equalities are not
        # comparing empty simulations.
        assert obj_stats["events_processed"] > 100
        assert sum(p for p, _b, _d in obj_dlv.values()) > 100

    def test_port_recycles_one_tx_event(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "calendar")
        net = single_bottleneck_network("srr:fast", 4)
        net.run(until=0.1)
        port = net.port("R", "dst")
        event = port._tx_event
        assert event is not None
        transmitted = port.packets_out
        net.run(until=0.3)
        assert port.packets_out > transmitted
        assert port._tx_event is event  # same object, re-armed per packet
