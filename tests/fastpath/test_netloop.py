"""The lean bottleneck replay vs the generic event-driven network.

``run_single_bottleneck_fast`` must be *semantically* faithful to
``single_bottleneck_network`` + ``Network.run``: identical per-flow
delivered packet and byte counts, and identical mean delays (the tandem
recurrences reproduce the engine's float arithmetic exactly, so the
comparison is exact, not approximate).
"""

import pytest

from repro.bench.scenarios import single_bottleneck_network
from repro.core.errors import ConfigurationError
from repro.fastpath.netloop import run_single_bottleneck_fast
from repro.net.eventq import ENGINE_ENV_VAR


def object_reference(n_flows, until, scheduler="srr"):
    net = single_bottleneck_network(scheduler, n_flows)
    net.run(until=until)
    out = {}
    for fid, rec in net.sinks.flows.items():
        delays = rec.delays()
        out[fid] = (rec.packets, rec.bytes, sum(delays), max(delays))
    return out


def fast_by_fid(run):
    out = {}
    fids = ["tag"] + [f"bg{i}" for i in range(run.n_flows)]
    for slot, fid in enumerate(fids):
        if run.delivered[slot]:
            out[fid] = (
                run.delivered[slot],
                run.delivered_bytes[slot],
                run.delay_sum[slot],
                run.delay_max[slot],
            )
    return out


class TestFaithfulness:
    @pytest.mark.parametrize("n_flows", [1, 4, 16, 64])
    def test_exact_counts_and_delays_vs_network(self, n_flows, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "calendar")
        until = 0.5
        expected = object_reference(n_flows, until)
        run = run_single_bottleneck_fast(n_flows, until)
        got = fast_by_fid(run)
        assert set(got) == set(expected)
        for fid in expected:
            packets, nbytes, delay_sum, delay_max = expected[fid]
            assert got[fid][0] == packets, f"{fid}: delivered count"
            assert got[fid][1] == nbytes, f"{fid}: delivered bytes"
            assert got[fid][2] == pytest.approx(delay_sum, abs=1e-9), fid
            assert got[fid][3] == pytest.approx(delay_max, abs=1e-12), fid

    def test_drr_fast_core_matches_too(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "calendar")
        expected = object_reference(8, 0.5, scheduler="drr")
        run = run_single_bottleneck_fast(8, 0.5, scheduler="drr:fast")
        got = fast_by_fid(run)
        assert {
            fid: (p, b) for fid, (p, b, _s, _m) in got.items()
        } == {
            fid: (p, b) for fid, (p, b, _s, _m) in expected.items()
        }

    def test_unsaturated_run_matches(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "calendar")
        net = single_bottleneck_network("srr", 4, saturate=False)
        net.run(until=0.5)
        run = run_single_bottleneck_fast(4, 0.5, saturate=False)
        got = fast_by_fid(run)
        for fid, rec in net.sinks.flows.items():
            assert got[fid][0] == rec.packets


class TestRunAccounting:
    def test_totals_are_consistent(self):
        run = run_single_bottleneck_fast(16, 0.5)
        assert run.total_delivered == sum(run.delivered)
        # Forwarded counts bottleneck serialization completions; a final
        # packet's delivery may land past the window, never the reverse.
        assert run.forwarded >= run.total_delivered
        assert sum(run.emitted) >= run.forwarded
        assert run.terms_scanned > 0  # SRR telemetry rides along
        for slot in range(run.n_flows + 1):
            if run.delivered[slot]:
                assert run.mean_delay(slot) > 0
            else:
                assert run.mean_delay(slot) == 0.0

    def test_mean_delay_is_sum_over_count(self):
        run = run_single_bottleneck_fast(4, 0.3)
        slot = 0
        assert run.mean_delay(slot) == (
            run.delay_sum[slot] / run.delivered[slot]
        )


class TestGuards:
    def test_object_core_scheduler_is_rejected(self):
        with pytest.raises(ConfigurationError):
            run_single_bottleneck_fast(4, 0.1, scheduler="srr")

    def test_overbooked_link_is_rejected(self):
        with pytest.raises(ConfigurationError):
            run_single_bottleneck_fast(4, 0.1, link_bps=50_000)
