"""Tests for adaptive quotes: requote, revoke, and the overload governor.

These pin the PR's audit invariant: an admission-time quote is either
honored, or explicitly revoked — never silently violated. The frozen
assumed-max-flows bound is the mechanism under test: quotes are linear
in N (SRR Lemma 2, DRR latency), so churn past the booking bound
invalidates them, and the governor's job is to notice and withdraw.
"""

import pytest

from repro.net import Network
from repro.obs.metrics import MetricsRegistry
from repro.qos import AdmissionController, OverloadGovernor, SLOWatchdog


def make_net(scheduler="srr"):
    net = Network(default_scheduler=scheduler)
    for n in ("a", "r1", "r2", "b"):
        net.add_node(n)
    net.add_link("a", "r1", rate_bps=10e6, delay=0.001)
    net.add_link("r1", "r2", rate_bps=1e6, delay=0.005)
    net.add_link("r2", "b", rate_bps=10e6, delay=0.001)
    return net


def make_cac(net=None, **kw):
    kw.setdefault("assumed_max_flows", 32)
    return AdmissionController(net if net is not None else make_net(), **kw)


class TestRequote:
    def test_initial_quote_preserved(self):
        cac = make_cac()
        res = cac.request("f1", "a", "b", 100_000)
        first = res.quote
        assert res.initial_quote is first
        cac.requote("f1")
        assert res.initial_quote is first  # admission-time promise kept
        assert res.requotes == 1

    def test_measured_n_tightens_when_underbooked(self):
        """One live flow on a bound booked for 32: the measured re-quote
        must be tighter than the worst-case admission quote."""
        cac = make_cac()
        res = cac.request("f1", "a", "b", 100_000)
        quote = cac.requote("f1")
        assert quote.total < res.initial_quote.total

    def test_measured_n_loosens_honestly_past_booking(self):
        """Churn past the booking bound must show up as a *looser*
        re-quote than the admission-time promise — the honest signal the
        governor revokes on, instead of a silently wrong bound."""
        net = make_net()
        cac = AdmissionController(net, assumed_max_flows=4)
        res = cac.request("f1", "a", "b", 100_000)
        sched = net.port("r1", "r2").scheduler
        for i in range(20):  # ungated churn blows past the bound
            sched.add_flow(f"churn-{i}", 1)
        honest = cac.requote("f1")
        assert honest.total > res.initial_quote.total

    def test_requote_unknown_flow_returns_none(self):
        assert make_cac().requote("ghost") is None

    def test_adaptive_quotes_at_admission(self):
        """With adaptive_quotes=True the admission-time quote itself uses
        the measured N instead of the worst case."""
        frozen = make_cac().request("f1", "a", "b", 100_000).quote
        adaptive = make_cac(adaptive_quotes=True).request(
            "f1", "a", "b", 100_000
        ).quote
        assert adaptive.total < frozen.total


class TestRevoke:
    def test_revoke_releases_and_audits(self):
        cac = make_cac()
        res = cac.request("f1", "a", "b", 900_000)
        assert cac.revoke("f1", reason="overload") is True
        assert res.revoked
        assert res.revoke_reason == "overload"
        assert "f1" not in cac.reservations
        assert "f1" in cac.revoked
        assert cac.revocations == 1
        cac.request("f2", "a", "b", 900_000)  # capacity actually freed

    def test_revoke_unknown_is_noop(self):
        cac = make_cac()
        assert cac.revoke("ghost") is False
        assert cac.revocations == 0


class TestGovernor:
    def test_bound_holds_initially(self):
        cac = make_cac()
        cac.request("f1", "a", "b", 100_000)
        gov = OverloadGovernor(cac)
        assert not gov.bound_invalidated()

    def test_churn_past_bound_detected_and_enforced(self):
        net = make_net()
        cac = AdmissionController(net, assumed_max_flows=4)
        cac.request("f1", "a", "b", 100_000)
        sched = net.port("r1", "r2").scheduler
        for i in range(10):
            sched.add_flow(f"churn-{i}", 1)
        gov = OverloadGovernor(cac, quote_slack=1.0)
        assert gov.bound_invalidated()
        result = gov.enforce()
        assert result["requoted"] == 1
        # Measured N (11) > booked N (4): the honest quote exceeds the
        # promise, so the reservation is revoked, not silently broken.
        assert result["revoked"] == 1
        assert gov.revoked == [("f1", "quote_invalidated")]
        assert cac.reservations == {}

    def test_enforce_keeps_quotes_within_slack(self):
        cac = make_cac()
        cac.request("f1", "a", "b", 100_000)
        gov = OverloadGovernor(cac, quote_slack=1.25)
        result = gov.enforce()  # measured N below booking: quotes tighten
        assert result["revoked"] == 0
        assert "f1" in cac.reservations

    def test_violation_revokes_and_unwatches(self):
        cac = make_cac()
        cac.request("f1", "a", "b", 100_000)
        dog = SLOWatchdog(
            mode="record", tracer=None, registry=MetricsRegistry()
        )
        dog.watch("f1", 0.010)
        gov = OverloadGovernor(cac)
        gov.watchdog = dog
        dog.add_violation_listener(gov.on_violation)

        class P:
            flow_id, created_at, delivered_at, seq, size = (
                "f1", 0.0, 0.5, 0, 200,
            )

        dog.on_delivery(P())
        assert gov.revoked == [("f1", "slo_violation")]
        assert "f1" not in cac.reservations
        assert "f1" not in dog.watched()  # a revoked promise is unwatched

    def test_demotion_polices_best_effort_only(self):
        gov = OverloadGovernor(make_cac())

        class P:
            def __init__(self, fid):
                self.flow_id = fid

        assert gov.police(P("fault-burst")) is None  # not demoting yet
        gov.set_demoting(True)
        assert gov.police(P("fault-burst")) == "demoted"
        assert gov.police(P("be-bulk")) == "demoted"
        assert gov.police(P("gold")) is None  # guaranteed never demoted
        gov.set_demoting(False)
        assert gov.police(P("fault-burst")) is None
        assert gov.demoted_packets == 2
        assert gov.demotions == 1
