"""Tests for the watermark admission policy and its shedding curve."""

import random

import pytest

from repro.core import ConfigurationError
from repro.qos import WatermarkPolicy


def make_policy(seed=7, low=0.5, high=0.9):
    return WatermarkPolicy(low, high, rng=random.Random(seed))


class TestCurve:
    def test_zones(self):
        p = make_policy()
        assert p.zone(0.0) == "admit"
        assert p.zone(0.499) == "admit"
        assert p.zone(0.5) == "shed"  # low watermark itself sheds
        assert p.zone(0.899) == "shed"
        assert p.zone(0.9) == "reject"
        assert p.zone(2.0) == "reject"

    def test_shed_probability_linear_ramp(self):
        p = make_policy(low=0.5, high=0.9)
        assert p.shed_probability(0.3) == 0.0
        assert p.shed_probability(0.5) == 0.0
        assert p.shed_probability(0.7) == pytest.approx(0.5)
        assert p.shed_probability(0.9) == 1.0
        assert p.shed_probability(1.5) == 1.0

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ConfigurationError):
            WatermarkPolicy(0.9, 0.5)
        with pytest.raises(ConfigurationError):
            WatermarkPolicy(-0.1, 0.5)
        with pytest.raises(ConfigurationError):
            WatermarkPolicy(0.5, 0.5)


class TestDecide:
    def test_admit_and_reject_consume_no_draw(self):
        """Only the shed band draws from the RNG, so decisions outside
        it cannot perturb the seeded stream."""
        p = make_policy(seed=3)
        state = p.rng.getstate()
        a = p.decide(0.1)
        r = p.decide(0.95)
        assert a.accepted and a.draw is None
        assert not r.accepted and r.draw is None
        assert p.rng.getstate() == state

    def test_shed_zone_draws_once(self):
        p = make_policy(seed=3)
        d = p.decide(0.7)
        assert d.zone == "shed"
        assert d.draw is not None
        assert d.shed_probability == pytest.approx(0.5)
        # Accepted iff the draw cleared the ramp.
        assert d.accepted == (d.draw >= d.shed_probability)

    def test_seeded_decisions_reproduce(self):
        loads = [0.1, 0.6, 0.7, 0.8, 0.85, 0.95, 0.55] * 10
        p1 = make_policy(seed=11)
        seq1 = [p1.decide(x).accepted for x in loads]
        p2 = make_policy(seed=11)
        seq2 = [p2.decide(x).accepted for x in loads]
        assert seq1 == seq2
        assert (p1.admitted, p1.shed, p1.rejected) == (
            p2.admitted, p2.shed, p2.rejected
        )

    def test_counters(self):
        p = make_policy(seed=5)
        p.decide(0.1)
        p.decide(0.95)
        shed_zone = [p.decide(0.7) for _ in range(50)]
        assert p.admitted + p.shed + p.rejected == 52
        assert p.rejected == 1
        assert p.shed == sum(1 for d in shed_zone if not d.accepted)
        # At p=0.5 over 50 draws both outcomes should appear.
        assert 0 < p.shed < 50
