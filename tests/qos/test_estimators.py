"""Tests for the control plane's deterministic rate estimators."""

import pytest

from repro.core import ConfigurationError
from repro.qos import (
    EWMARateEstimator,
    RateEstimatorBank,
    WindowRateEstimator,
)


class TestEWMA:
    def test_converges_to_cbr_rate(self):
        """A steady 200 B / 10 ms stream is 160 kb/s; after many tau the
        estimate should sit within a few percent of it."""
        est = EWMARateEstimator(tau_s=0.1)
        for i in range(500):
            est.observe(i * 0.01, 200)
        assert est.rate_bps(5.0) == pytest.approx(160_000, rel=0.05)

    def test_same_instant_burst_coalesces(self):
        """Back-to-back arrivals at one simulation instant must merge
        into a single sample instead of dividing by a zero dt."""
        est = EWMARateEstimator(tau_s=0.1)
        est.observe(0.0, 100)
        for _ in range(10):
            est.observe(1.0, 100)  # an 11th-instant burst, one sample
        rate = est.rate_bps(1.5)
        assert rate > 0
        assert rate < float("inf")

    def test_decays_toward_zero_in_silence(self):
        est = EWMARateEstimator(tau_s=0.1)
        for i in range(100):
            est.observe(i * 0.01, 200)
        busy = est.rate_bps(1.0)
        assert est.rate_bps(2.0) < busy / 100  # 10 tau of silence

    def test_deterministic(self):
        a, b = EWMARateEstimator(tau_s=0.25), EWMARateEstimator(tau_s=0.25)
        for i in range(50):
            a.observe(i * 0.003, 120)
            b.observe(i * 0.003, 120)
        assert a.rate_bps(0.2) == b.rate_bps(0.2)

    def test_rejects_bad_tau(self):
        with pytest.raises(ConfigurationError):
            EWMARateEstimator(tau_s=0.0)


class TestWindow:
    def test_exact_rate_over_window(self):
        est = WindowRateEstimator(window_s=0.5, buckets=10)
        for i in range(10):
            est.observe(i * 0.05, 100)  # 1000 bytes inside the window
        assert est.rate_bps(0.45) == pytest.approx(1000 * 8 / 0.5)

    def test_old_buckets_expire(self):
        est = WindowRateEstimator(window_s=0.5, buckets=10)
        est.observe(0.0, 10_000)
        assert est.rate_bps(0.1) > 0
        assert est.rate_bps(5.0) == 0.0  # whole window has rolled over

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            WindowRateEstimator(window_s=0.0)
        with pytest.raises(ConfigurationError):
            WindowRateEstimator(buckets=0)


class TestBank:
    def test_lazy_keys_and_drop(self):
        bank = RateEstimatorBank(kind="ewma", tau_s=0.1)
        assert len(bank) == 0
        assert bank.rate_bps("ghost", 1.0) == 0.0
        bank.observe("f1", 0.0, 200)
        bank.observe("f2", 0.0, 200)
        assert set(bank.keys()) == {"f1", "f2"}
        bank.drop("f1")
        assert len(bank) == 1
        bank.drop("f1")  # idempotent

    def test_window_kind(self):
        bank = RateEstimatorBank(kind="window", window_s=1.0, buckets=4)
        bank.observe("p", 0.0, 1000)
        assert bank.rate_bps("p", 0.5) == pytest.approx(8000.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            RateEstimatorBank(kind="kalman")
