"""Integration tests for the adaptive overload control plane.

The headline invariant pinned here is the PR's acceptance criterion for
overload-burst fault plans crossed with admission control: every
admitted quote is *honored or explicitly revoked* — a live, unrevoked
guaranteed reservation with recorded SLO violations is a control-plane
bug. Plus the gate path (watermark shedding of churn joins) and the
determinism of the whole loop under a fixed seed.
"""

import pytest

from repro.core import ConfigurationError
from repro.faults import FaultInjector, FaultSpec, build_fault_plan
from repro.net import CBRSource, Network
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.qos import AdmissionController, ControlPlane


BOTTLENECK_BPS = 1e6
MTU = 200


@pytest.fixture(autouse=True)
def isolated_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


def build_scenario(*, seed, control_on=True, low=0.4, high=0.7,
                   duration=2.0, churn_rate_hz=25.0):
    """One guarded bottleneck under heavy churn; returns everything."""
    net = Network(default_scheduler="srr")
    for n in ("src", "router", "dst"):
        net.add_node(n)
    net.add_link("src", "router", rate_bps=20e6, delay=0.0001)
    net.add_link("router", "dst", rate_bps=BOTTLENECK_BPS, delay=0.001,
                 buffer_packets=None)
    cac = AdmissionController(
        net, weight_unit_bps=16_000, packet_size=MTU, assumed_max_flows=16,
    )
    reservations = []
    for i in range(2):
        fid = f"guar{i}"
        res = cac.request(fid, "src", "dst", 0.25 * BOTTLENECK_BPS)
        net.attach_source(
            fid, CBRSource(0.25 * BOTTLENECK_BPS, packet_size=MTU)
        )
        reservations.append(res)
    plane = None
    if control_on:
        plane = ControlPlane(
            net, cac, seed=seed, low=low, high=high,
            interval_s=0.02, horizon=duration, mode="record",
        ).arm([net.port("router", "dst")])
        for res in reservations:
            plane.watch(res)
    spec = FaultSpec(churn_rate_hz=churn_rate_hz, churn_hold_s=1.0,
                     churn_max_weight_bits=4, burst_rate_hz=2.0)
    plan = build_fault_plan(
        spec, seed=seed, duration=duration,
        churn_route=("src", "dst"), burst_node="src",
        weight_unit_bps=16_000, packet_size=MTU,
    )
    injector = FaultInjector(
        net, plan, fault_route=("src", "dst"), gate=plane,
    )
    injector.install()
    net.run(until=duration)
    if plane is not None:
        plane.stop()
    return net, cac, plane, injector, reservations


class TestHonorOrRevoke:
    def test_no_silent_violations_under_overload(self):
        """Overload churn + bursts against a gated bottleneck: every
        guaranteed reservation ends the run either violation-free or
        explicitly revoked with an audit reason."""
        net, cac, plane, injector, _ = build_scenario(seed=42)
        assert injector.fired  # the plan actually exercised the run
        for fid, res in list(cac.reservations.items()):
            assert plane.watchdog.violation_count(fid) == 0, (
                f"live reservation {fid} silently violated"
            )
            assert not res.revoked
        for fid, res in cac.revoked.items():
            assert res.revoked
            assert res.revoke_reason in (
                "quote_invalidated", "slo_violation", "overload",
            )

    def test_gate_sheds_under_load(self):
        """With tight watermarks the plane must refuse some churn joins
        (skipped as 'shed'), and refused flows are never installed."""
        net, cac, plane, injector, _ = build_scenario(
            seed=7, low=0.2, high=0.5,
        )
        shed = [t for t, kind in injector.fired
                if kind == "flow_join:skipped"]
        assert shed, "no joins shed despite tight watermarks"
        assert plane.policy.shed + plane.policy.rejected >= len(shed)
        # Shed flows never attached: every installed churn flow was
        # explicitly admitted.
        joins = sum(1 for _, k in injector.fired if k == "flow_join")
        assert plane.policy.admitted >= joins

    def test_uncontrolled_baseline_admits_everything(self):
        net, cac, plane, injector, _ = build_scenario(
            seed=7, control_on=False,
        )
        assert plane is None
        assert not any("skipped" in k for _, k in injector.fired
                       if k.startswith("flow_join"))


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def run(seed):
            net, cac, plane, injector, _ = build_scenario(seed=seed)
            return (
                plane.policy.admitted, plane.policy.shed,
                plane.policy.rejected, cac.revocations,
                len(plane.watchdog.violations), plane.ticks,
                [k for _, k in injector.fired],
                net.sinks.total_packets,
            )

        assert run(123) == run(123)

    def test_different_seeds_differ(self):
        a = build_scenario(seed=1)[3].fired
        b = build_scenario(seed=2)[3].fired
        assert a != b  # the plan (and so the decisions) moved with the seed


class TestPlaneUnit:
    def test_unarmed_gate_is_open(self):
        net = Network(default_scheduler="srr")
        for n in ("a", "b"):
            net.add_node(n)
        net.add_link("a", "b", rate_bps=1e6, delay=0.001)
        plane = ControlPlane(net, None, seed=0)
        assert plane.admit_join("f", "a", "b", rate_bps=1e9)

    def test_watch_requires_quote_or_target(self):
        net = Network(default_scheduler="srr")
        for n in ("a", "b"):
            net.add_node(n)
        net.add_link("a", "b", rate_bps=1e6, delay=0.001)
        plane = ControlPlane(net, None, seed=0)

        class FakeRes:
            flow_id = "f"
            quote = None

        with pytest.raises(ConfigurationError):
            plane.watch(FakeRes())
        plane.watch(FakeRes(), target_s=0.5)
        assert plane.watchdog.watched() == {"f": 0.5}

    def test_rejects_bad_config(self):
        net = Network(default_scheduler="srr")
        with pytest.raises(ConfigurationError):
            ControlPlane(net, None, interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ControlPlane(net, None, slo_margin=0.0)
