"""Tests for the per-flow SLO watchdog."""

import pytest

from repro.core import ConfigurationError, SLOViolation
from repro.obs.metrics import MetricsRegistry
from repro.qos import SLOWatchdog


class FakePacket:
    def __init__(self, flow_id, created_at, delivered_at, seq=0, size=200):
        self.flow_id = flow_id
        self.created_at = created_at
        self.delivered_at = delivered_at
        self.seq = seq
        self.size = size


def make_watchdog(mode="record"):
    return SLOWatchdog(mode=mode, tracer=None, registry=MetricsRegistry())


class TestWatch:
    def test_unwatched_flows_ignored(self):
        dog = make_watchdog(mode="raise")
        dog.on_delivery(FakePacket("be-1", 0.0, 99.0))  # very late, no SLO
        assert not dog.violations

    def test_record_mode_counts(self):
        dog = make_watchdog()
        dog.watch("f1", 0.010)
        dog.on_delivery(FakePacket("f1", 0.0, 0.005))
        dog.on_delivery(FakePacket("f1", 0.0, 0.050, seq=1))
        dog.on_delivery(FakePacket("f1", 0.0, 0.020, seq=2))
        assert len(dog.violations) == 2
        assert dog.violation_count("f1") == 2
        assert dog.worst_delay("f1") == pytest.approx(0.050)
        v = dog.violations[0]
        assert isinstance(v, SLOViolation)
        assert v.flow_id == "f1"
        assert v.observed_s == pytest.approx(0.050)
        assert v.target_s == pytest.approx(0.010)
        assert v.details["seq"] == 1

    def test_raise_mode_raises_on_first_exceedance(self):
        dog = make_watchdog(mode="raise")
        dog.watch("f1", 0.010)
        dog.on_delivery(FakePacket("f1", 0.0, 0.005))
        with pytest.raises(SLOViolation):
            dog.on_delivery(FakePacket("f1", 0.0, 0.011))

    def test_unwatch_stops_checking(self):
        dog = make_watchdog(mode="raise")
        dog.watch("f1", 0.010)
        dog.unwatch("f1")
        dog.on_delivery(FakePacket("f1", 0.0, 1.0))  # no longer watched
        assert not dog.violations
        assert dog.watched() == {}

    def test_watch_updates_target_in_place(self):
        dog = make_watchdog()
        dog.watch("f1", 0.010)
        dog.watch("f1", 0.100)  # re-quote loosened the target
        dog.on_delivery(FakePacket("f1", 0.0, 0.050))
        assert not dog.violations
        assert dog.watched() == {"f1": 0.100}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            make_watchdog().watch("f1", 0.0)
        with pytest.raises(ConfigurationError):
            SLOWatchdog(mode="panic", registry=MetricsRegistry())


class TestReporting:
    def test_listener_and_class_totals(self):
        dog = make_watchdog()
        dog.watch("gold", 0.01, service_class="guaranteed")
        dog.watch("iron", 0.01, service_class="best-effort")
        seen = []
        dog.add_violation_listener(seen.append)
        dog.on_delivery(FakePacket("gold", 0.0, 0.02))
        dog.on_delivery(FakePacket("iron", 0.0, 0.03))
        dog.on_delivery(FakePacket("iron", 0.0, 0.04))
        assert [v.flow_id for v in seen] == ["gold", "iron", "iron"]
        assert dog.class_violations() == {"guaranteed": 1, "best-effort": 2}
        summary = dog.summary()
        assert summary["watched"] == 2
        assert summary["violations"] == 3

    def test_registry_counters(self):
        registry = MetricsRegistry()
        dog = SLOWatchdog(mode="record", tracer=None, registry=registry)
        dog.watch("f1", 0.010)
        dog.on_delivery(FakePacket("f1", 0.0, 0.005))
        dog.on_delivery(FakePacket("f1", 0.0, 0.050))
        snap = registry.snapshot()
        assert snap["slo_checks_total"]["value"] == 2
        assert snap["slo_violations_total"]["value"] == 1
