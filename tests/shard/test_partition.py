"""Partitioner invariants: placement, boundaries, lookahead."""

import math

import pytest

from repro.core import ConfigurationError
from repro.net.port import BoundaryPeer
from repro.net.scenario import dumbbell_of_dumbbells, fat_tree
from repro.shard.build import build_network, build_shard_network
from repro.shard.partition import partition_topology, validate_plan
from repro.shard.topology import LinkSpec, NodeSpec, TopologySpec


class TestPlacement:
    def test_groups_round_robin_onto_shards(self):
        spec = dumbbell_of_dumbbells(groups=4, hosts_per_group=2)
        plan = partition_topology(spec, 2)
        groups = spec.group_of()
        for node, shard in plan.shard_of.items():
            assert shard == groups[node] % 2

    def test_every_shard_owns_nodes(self):
        spec = fat_tree(k=4)
        for shards in (1, 2, 4):
            plan = partition_topology(spec, shards)
            for s in range(shards):
                assert plan.nodes_of(s)

    def test_groups_never_split(self):
        spec = fat_tree(k=4)
        plan = partition_topology(spec, 4)
        groups = spec.group_of()
        by_group = {}
        for node, shard in plan.shard_of.items():
            assert by_group.setdefault(groups[node], shard) == shard

    def test_too_many_shards_rejected(self):
        spec = dumbbell_of_dumbbells(groups=2, hosts_per_group=1)
        with pytest.raises(ConfigurationError):
            partition_topology(spec, 3)

    def test_zero_shards_rejected(self):
        spec = dumbbell_of_dumbbells(groups=2, hosts_per_group=1)
        with pytest.raises(ConfigurationError):
            partition_topology(spec, 0)


class TestBoundary:
    def test_every_edge_crosses_at_most_one_boundary(self):
        spec = fat_tree(k=4)
        plan = partition_topology(spec, 4)
        for link in spec.links:
            assert len(
                {plan.shard_of[link.a], plan.shard_of[link.b]}
            ) <= 2

    def test_boundary_latency_at_least_lookahead(self):
        spec = dumbbell_of_dumbbells(groups=4, hosts_per_group=2)
        plan = partition_topology(spec, 4)
        assert plan.boundary
        assert plan.lookahead > 0
        for edge in plan.boundary:
            assert edge.delay >= plan.lookahead

    def test_fat_tree_boundary_is_agg_core_only(self):
        spec = fat_tree(k=4)
        plan = partition_topology(spec, 4)
        for edge in plan.boundary:
            assert "a" in edge.src or edge.src.startswith("c")
            assert "a" in edge.dst or edge.dst.startswith("c")

    def test_zero_delay_boundary_rejected(self):
        spec = TopologySpec(
            name="bad",
            nodes=(NodeSpec("a", group=0), NodeSpec("b", group=1)),
            links=(LinkSpec("a", "b", rate_bps=1e6, delay=0.0),),
        )
        with pytest.raises(ConfigurationError):
            partition_topology(spec, 2)

    def test_validate_plan_passes_for_generators(self):
        for spec in (
            dumbbell_of_dumbbells(groups=3, hosts_per_group=2),
            fat_tree(k=4),
        ):
            for shards in (1, 2, spec.n_groups):
                validate_plan(partition_topology(spec, shards))


class TestOneShardIdentity:
    def test_one_shard_plan_has_no_boundary(self):
        spec = fat_tree(k=4)
        plan = partition_topology(spec, 1)
        assert plan.boundary == ()
        assert plan.lookahead == math.inf

    def test_one_shard_build_is_identity(self):
        """A 1-shard ShardNetwork has no proxy ports and matches the
        reference build structurally."""
        spec = dumbbell_of_dumbbells(groups=2, hosts_per_group=2)
        plan = partition_topology(spec, 1)
        sharded = build_shard_network(plan, 0)
        reference = build_network(spec)
        assert sharded.boundary_ports == []
        assert set(sharded.nodes) == set(reference.nodes)
        for name, node in sharded.nodes.items():
            assert set(node.ports) == set(reference.nodes[name].ports)
            for peer_name, port in node.ports.items():
                assert not isinstance(port.peer, BoundaryPeer)
                assert port.remote_receive is None
                assert not port.link.boundary

    def test_multi_shard_build_has_proxies_only_at_boundary(self):
        spec = dumbbell_of_dumbbells(groups=2, hosts_per_group=2)
        plan = partition_topology(spec, 2)
        net = build_shard_network(plan, 0)
        boundary_pairs = {
            (e.src, e.dst) for e in plan.boundary if e.src_shard == 0
        }
        proxied = {
            (name, peer)
            for name, node in net.nodes.items()
            for peer, port in node.ports.items()
            if isinstance(port.peer, BoundaryPeer)
        }
        assert proxied == boundary_pairs
        for port in net.boundary_ports:
            assert port.link.boundary
            assert port.remote_receive is not None
