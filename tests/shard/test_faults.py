"""Hardening: a dead or hung shard surfaces as a structured ShardError
through every path — direct call and the sweep failures="collect" path —
and never deadlocks the barrier or leaks worker processes."""

import multiprocessing

import pytest

from repro.harness.sweep import FailedRun, sweep
from repro.net.scenario import dumbbell_of_dumbbells
from repro.shard.engine import CHAOS_ENV_VAR, ShardError, run_sharded


def _spec():
    return dumbbell_of_dumbbells(groups=2, hosts_per_group=2)


def _chaos_point(chaos: str, timeout: float) -> str:
    """Module-level (picklable) sweep point that injects shard chaos."""
    import os

    if chaos:
        os.environ[CHAOS_ENV_VAR] = chaos
    try:
        result = run_sharded(
            _spec(), until=0.3, shards=2, barrier_timeout=timeout
        )
        return result.digest
    finally:
        os.environ.pop(CHAOS_ENV_VAR, None)


class TestShardDeath:
    def test_dead_shard_raises_structured_error(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "1:5:die")
        with pytest.raises(ShardError) as err:
            run_sharded(_spec(), until=0.3, shards=2)
        assert err.value.shard_id == 1
        assert err.value.window == 5
        assert err.value.reason == "died"
        assert err.value.horizon is not None
        assert "exit code 3" in str(err.value)

    def test_workers_reaped_after_death(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "0:2:die")
        with pytest.raises(ShardError):
            run_sharded(_spec(), until=0.3, shards=2)
        assert multiprocessing.active_children() == []


class TestShardHang:
    def test_hung_shard_times_out_with_context(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "0:3:hang")
        with pytest.raises(ShardError) as err:
            run_sharded(
                _spec(), until=0.3, shards=2, barrier_timeout=2.0
            )
        assert err.value.shard_id == 0
        assert err.value.window == 3
        assert "hung" in err.value.reason
        assert err.value.pending_boundary >= 0

    def test_workers_reaped_after_hang(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "1:1:hang")
        with pytest.raises(ShardError):
            run_sharded(
                _spec(), until=0.3, shards=2, barrier_timeout=1.0
            )
        assert multiprocessing.active_children() == []


class TestSweepIntegration:
    def test_collect_path_yields_failed_run(self):
        """A chaos-killed sharded point lands as FailedRun(error_type=
        'ShardError') in a failures='collect' sweep instead of aborting
        it — the PR 3 contract extended to shard workers."""
        results = sweep(
            _chaos_point,
            [("1:4:die", 30.0), ("", 30.0)],
            failures="collect",
        )
        failed, good = results
        assert isinstance(failed, FailedRun)
        assert failed.error_type == "ShardError"
        assert "died" in failed.error
        assert isinstance(good, str) and len(good) == 64

    def test_bad_chaos_spec_is_a_config_error(self, monkeypatch):
        from repro.core import ConfigurationError

        monkeypatch.setenv(CHAOS_ENV_VAR, "garbage")
        with pytest.raises(ShardError) as err:
            run_sharded(_spec(), until=0.05, shards=2)
        # The worker raises ConfigurationError; the coordinator reports
        # it as a structured remote failure naming the culprit.
        assert err.value.reason == "raised"
        assert "ConfigurationError" in str(err.value)
