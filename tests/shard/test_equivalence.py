"""The headline invariant: sharded runs are bit-identical to one process.

Digests are sha256 over per-flow delivery streams (seq, size, created_at,
delivered_at — floats via repr), so "equal digest" means every packet of
every flow was created and delivered at exactly the same simulated times.
"""

import pytest

from repro.core import ConfigurationError
from repro.net.scenario import dumbbell_of_dumbbells, fat_tree
from repro.shard.build import build_network
from repro.shard.digest import delivery_digest, network_delivery_digest
from repro.shard.engine import run_sharded

UNTIL = 0.2

# Module-level cache: reference results are reused across parametrized
# cases instead of re-simulating per (engine, shards) combination.
_REF = {}


def _dumbbell():
    return dumbbell_of_dumbbells(groups=4, hosts_per_group=2)


def _fat_tree():
    return fat_tree(k=4)


def _reference(topo_key, engine):
    key = (topo_key, engine)
    if key not in _REF:
        spec = _dumbbell() if topo_key == "dumbbell2" else _fat_tree()
        _REF[key] = run_sharded(
            spec, until=UNTIL, shards=1, engine=engine
        )
    return _REF[key]


class TestDigestEquivalence:
    @pytest.mark.parametrize("engine", ["heap", "calendar"])
    @pytest.mark.parametrize("topo_key", ["dumbbell2", "fat_tree"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_matches_single_process(
        self, topo_key, engine, shards
    ):
        spec = _dumbbell() if topo_key == "dumbbell2" else _fat_tree()
        ref = _reference(topo_key, engine)
        result = run_sharded(
            spec, until=UNTIL, shards=shards, engine=engine
        )
        assert result.digest == ref.digest
        assert result.delivered_packets == ref.delivered_packets
        assert result.events == ref.events

    def test_heap_and_calendar_agree(self):
        assert (
            _reference("dumbbell2", "heap").digest
            == _reference("dumbbell2", "calendar").digest
        )

    def test_one_shard_path_matches_plain_network_run(self):
        """run_sharded(shards=1) is the plain build_network + run."""
        spec = _dumbbell()
        net = build_network(spec)
        net.run(until=UNTIL)
        assert (
            network_delivery_digest(net)
            == _reference("dumbbell2", "heap").digest
        )

    def test_narrower_window_same_digest(self):
        """Advancing below the lookahead is still conservative."""
        spec = _dumbbell()
        result = run_sharded(
            spec, until=UNTIL, shards=2, window=0.001
        )
        assert result.digest == _reference("dumbbell2", "heap").digest
        assert result.windows > _reference("dumbbell2", "heap").windows

    def test_deliveries_exactly_at_until_are_kept(self):
        """The flush round: a cross-shard arrival landing at exactly
        `until` must be delivered, as single-process run(until) fires
        events at the boundary inclusively."""
        spec = _dumbbell()
        ref = run_sharded(spec, until=UNTIL, shards=1)
        # Pick an `until` equal to an actual delivery instant so the
        # edge case is exercised for real, not vacuously.
        last_delivery = max(
            rec[3] for stream in ref.flows.values() for rec in stream
        )
        edge_ref = run_sharded(spec, until=last_delivery, shards=1)
        edge_sharded = run_sharded(spec, until=last_delivery, shards=2)
        assert edge_sharded.digest == edge_ref.digest
        assert any(
            rec[3] == last_delivery
            for stream in edge_sharded.flows.values()
            for rec in stream
        )


class TestResultShape:
    def test_summary_fields(self):
        result = run_sharded(_dumbbell(), until=0.05, shards=2, seed=7)
        summary = result.summary()
        assert summary["n_shards"] == 2
        assert summary["digest"] == result.digest
        assert len(summary["child_seeds"]) == 2
        assert result.boundary_packets >= 0
        assert 0.0 <= result.null_ratio <= 1.0
        assert len(result.shard_stats) == 2

    def test_flows_partition_across_shards(self):
        """Every flow's delivery stream comes from exactly one shard."""
        result = run_sharded(_dumbbell(), until=UNTIL, shards=2)
        total = sum(s["delivered_packets"] for s in result.shard_stats)
        assert total == result.delivered_packets
        assert all(
            s["delivered_packets"] > 0 for s in result.shard_stats
        )

    def test_digest_function_is_order_insensitive_across_flows(self):
        flows_a = {"f1": [(0, 200, 0.0, 0.1)], "f2": [(0, 200, 0.0, 0.2)]}
        flows_b = {"f2": [(0, 200, 0.0, 0.2)], "f1": [(0, 200, 0.0, 0.1)]}
        assert delivery_digest(flows_a) == delivery_digest(flows_b)

    def test_digest_sensitive_to_timing(self):
        flows_a = {"f1": [(0, 200, 0.0, 0.1)]}
        flows_b = {"f1": [(0, 200, 0.0, 0.1000001)]}
        assert delivery_digest(flows_a) != delivery_digest(flows_b)


class TestValidation:
    def test_window_above_lookahead_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sharded(_dumbbell(), until=0.1, shards=2, window=10.0)

    def test_nonpositive_until_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sharded(_dumbbell(), until=0.0, shards=1)
