"""Observability env inheritance through shard workers.

Shard workers must pick up REPRO_ENGINE / REPRO_FLIGHT / REPRO_TELEMETRY
exactly as sweep() pool workers do — and arming the observability plane
must not change simulation results (the armed-vs-off digest assertion).
"""

import json
import os

import pytest

from repro.net.eventq import ENGINE_ENV_VAR
from repro.net.scenario import dumbbell_of_dumbbells
from repro.obs.flight import FLIGHT_ENV_VAR
from repro.obs.telemetry import TELEMETRY_ENV_VAR
from repro.shard.engine import run_sharded


def _spec():
    return dumbbell_of_dumbbells(groups=2, hosts_per_group=2)


class TestEnvInheritance:
    def test_engine_env_selects_worker_backend(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "calendar")
        env_result = run_sharded(_spec(), until=0.1, shards=2)
        monkeypatch.delenv(ENGINE_ENV_VAR)
        explicit = run_sharded(
            _spec(), until=0.1, shards=2, engine="calendar"
        )
        assert env_result.digest == explicit.digest

    def test_armed_and_off_digests_match(self, tmp_path, monkeypatch):
        """Arming flight recorder + telemetry in every shard worker is
        observation, not perturbation: digests must be identical."""
        off = run_sharded(_spec(), until=0.15, shards=2)
        monkeypatch.setenv(FLIGHT_ENV_VAR, "4")
        monkeypatch.setenv(
            TELEMETRY_ENV_VAR, str(tmp_path / "telemetry.jsonl")
        )
        armed = run_sharded(_spec(), until=0.15, shards=2)
        assert armed.digest == off.digest
        assert armed.events == off.events

    def test_workers_write_shard_telemetry_frames(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "telemetry.jsonl"
        monkeypatch.setenv(TELEMETRY_ENV_VAR, str(path))
        run_sharded(_spec(), until=0.1, shards=2)
        frames = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        shard_frames = [f for f in frames if f.get("kind") == "shard"]
        end_frames = [f for f in frames if f.get("kind") == "shard_end"]
        assert {f["shard"] for f in end_frames} == {0, 1}
        assert shard_frames, "workers should heartbeat per window"
        sample = end_frames[0]
        for key in ("window", "horizon", "events", "null_windows",
                    "boundary", "windows"):
            assert key in sample
        # Two distinct worker pids wrote frames.
        assert len({f["pid"] for f in end_frames}) == 2

    def test_obs_top_renders_shard_column(self, tmp_path, monkeypatch):
        from repro.obs.top import collect_frames, render, summarize

        path = tmp_path / "telemetry.jsonl"
        monkeypatch.setenv(TELEMETRY_ENV_VAR, str(path))
        run_sharded(_spec(), until=0.1, shards=2)
        rows = summarize(collect_frames(str(tmp_path)))
        shard_rows = [r for r in rows if r.get("shard") is not None]
        assert len(shard_rows) == 2
        for row in shard_rows:
            # shard_end is terminal: never flagged stalled.
            assert row["finished"]
            assert row["shard"]["horizon_lag"] is not None
        body = render(rows)
        assert "shard" in body
        assert "s0" in body and "s1" in body

    def test_chaos_env_not_forwarded_needlessly(self, monkeypatch):
        """Only the three observability vars are snapshotted; the env
        dict the coordinator ships must not grow silently."""
        from repro.shard.engine import _WORKER_ENV_VARS, _snapshot_env

        monkeypatch.setenv(ENGINE_ENV_VAR, "heap")
        snap = _snapshot_env()
        assert set(snap) == set(_WORKER_ENV_VARS)
        assert snap[ENGINE_ENV_VAR] == "heap"
