"""Tests for the pure-data topology specs and the generators."""

import pickle

import pytest

from repro.core import ConfigurationError
from repro.net.scenario import dumbbell_of_dumbbells, fat_tree
from repro.shard.topology import (
    FlowDecl,
    LinkSpec,
    NodeSpec,
    SourceDecl,
    TopologySpec,
)


def tiny_spec(**kwargs):
    base = dict(
        name="tiny",
        nodes=(NodeSpec("a", group=0), NodeSpec("b", group=1)),
        links=(LinkSpec("a", "b", rate_bps=1e6, delay=0.001),),
        flows=(FlowDecl("f1", "a", "b"),),
        sources=(
            SourceDecl("f1", "cbr", (("rate_bps", 8e4),)),
        ),
    )
    base.update(kwargs)
    return TopologySpec(**base)


class TestValidation:
    def test_valid_spec_builds(self):
        spec = tiny_spec()
        assert spec.n_groups == 2
        assert spec.groups() == (0, 1)
        assert spec.group_of()["b"] == 1

    def test_duplicate_node_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(nodes=(NodeSpec("a"), NodeSpec("a")))

    def test_unknown_link_endpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(links=(LinkSpec("a", "zz", rate_bps=1e6),))

    def test_unknown_flow_endpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(flows=(FlowDecl("f1", "a", "zz"),))

    def test_duplicate_flow_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(flows=(FlowDecl("f1", "a", "b"),
                             FlowDecl("f1", "b", "a")))

    def test_source_for_unknown_flow_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(sources=(SourceDecl("nope", "cbr", ()),))

    def test_unknown_source_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(sources=(SourceDecl("f1", "quantum", ()),))

    def test_window_source_not_offered(self):
        # Closed-loop sources cannot cross shard boundaries; the spec
        # vocabulary must not offer them.
        from repro.shard.topology import SOURCE_KINDS
        assert "window" not in SOURCE_KINDS


class TestSignature:
    def test_signature_stable(self):
        assert tiny_spec().signature() == tiny_spec().signature()

    def test_signature_tracks_content(self):
        changed = tiny_spec(links=(
            LinkSpec("a", "b", rate_bps=2e6, delay=0.001),
        ))
        assert changed.signature() != tiny_spec().signature()

    def test_spec_is_picklable(self):
        spec = tiny_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.signature() == spec.signature()


class TestGenerators:
    def test_dumbbell_groups_are_router_groups(self):
        spec = dumbbell_of_dumbbells(groups=3, hosts_per_group=2)
        assert spec.n_groups == 3
        # Every host/sink/router of group g carries group g.
        groups = spec.group_of()
        assert groups["g1h0"] == 1
        assert groups["g2d1"] == 2

    def test_fat_tree_shape(self):
        spec = fat_tree(k=4)
        # k=4: 4 pods x (2 edge + 2 agg + 4 hosts) + 4 cores.
        assert len(spec.nodes) == 4 * 8 + 4
        assert spec.n_groups == 4
        assert len(spec.flows) == 16  # one flow per host

    def test_fat_tree_odd_k_rejected(self):
        with pytest.raises(ConfigurationError):
            fat_tree(k=3)

    def test_fat_tree_flows_per_host_bounds(self):
        with pytest.raises(ConfigurationError):
            fat_tree(k=4, flows_per_host=4)
        assert len(fat_tree(k=4, flows_per_host=3).flows) == 48

    def test_source_rates_pairwise_distinct(self):
        # The tie-freedom contract: no two CBR sources share a rate.
        spec = fat_tree(k=4, flows_per_host=3)
        rates = [dict(s.params)["rate_bps"] for s in spec.sources]
        assert len(set(rates)) == len(rates)
