"""Integration: hierarchical scheduler on a simulated bottleneck port."""

import pytest

from repro.core import SRRScheduler
from repro.core.hierarchy import HierarchicalScheduler
from repro.net import BurstSource, CBRSource, Network
from repro.schedulers import DRRScheduler


def trunk_factory(**_kw):
    h = HierarchicalScheduler(SRRScheduler(mode="deficit", quantum=1500))
    h.add_class("gold", 3, scheduler=SRRScheduler())
    h.add_class("bronze", 1, scheduler=DRRScheduler(quantum=1500))
    return h


def build():
    net = Network(default_scheduler="fifo")
    for n in ("src", "bulkhost", "t", "dst"):
        net.add_node(n)
    net.add_link("src", "t", rate_bps=100e6, delay=0.0005)
    net.add_link("bulkhost", "t", rate_bps=100e6, delay=0.0005)
    net.add_link("t", "dst", rate_bps=2e6, delay=0.001,
                 scheduler=trunk_factory)
    return net


class TestHierarchicalPort:
    def test_class_isolation_under_flood(self):
        net = build()
        net.add_flow("gold1", "src", "dst", weight=1,
                     flow_kwargs={"class_id": "gold"})
        net.attach_source("gold1", CBRSource(400_000, packet_size=500))
        net.add_flow("greedy", "bulkhost", "dst", weight=1,
                     flow_kwargs={"class_id": "bronze"})
        net.attach_source("greedy", BurstSource(4000, packet_size=1500))
        net.run(until=4.0)
        gold = net.sinks.flow("gold1")
        # Gold's demand (400 kb/s) is far below its 1.5 Mb/s class share:
        # full goodput, single-digit-ms delays despite the flood.
        assert gold.throughput_bps(1.0, 4.0) == pytest.approx(400_000, rel=0.1)
        assert max(gold.delays()) < 0.02
        # The greedy class still gets the residue (work conservation).
        greedy = net.sinks.flow("greedy")
        assert greedy.throughput_bps(1.0, 4.0) > 1e6

    def test_flow_kwargs_ignored_by_plain_ports(self):
        """class_id reaches the hierarchical trunk but is dropped for the
        FIFO access ports (TypeError fallback)."""
        net = build()
        net.add_flow("gold1", "src", "dst", weight=1,
                     flow_kwargs={"class_id": "gold"})
        assert net.port("src", "t").scheduler.has_flow("gold1")
        assert net.port("t", "dst").scheduler.has_flow("gold1")

    def test_intraclass_weighting(self):
        net = build()
        for fid, w in (("a", 3), ("b", 1)):
            net.add_flow(fid, "src", "dst", weight=w,
                         flow_kwargs={"class_id": "gold"})
            net.attach_source(fid, BurstSource(3000, packet_size=500))
        net.run(until=3.0)
        a = net.sinks.flow("a").packets
        b = net.sinks.flow("b").packets
        assert a / b == pytest.approx(3.0, rel=0.1)
