"""Smoke tests for the example scripts.

Every example must at least byte-compile; the fast ones are executed end
to end (reduced scale where they take arguments).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def run_example(name, *args, timeout=120):
    path = next(p for p in EXAMPLES if p.name == name)
    return subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExampleRuns:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "service order" in result.stdout
        assert "alice-data" in result.stdout

    def test_multiservice_small(self):
        result = run_example(
            "multiservice_delay.py",
            "--schedulers", "srr",
            "--duration", "1",
            "--background", "30",
        )
        assert result.returncode == 0, result.stderr
        assert "f1 32kb/s" in result.stdout

    def test_guaranteed_delay_small(self):
        result = run_example("guaranteed_delay_g3.py", "--duration", "2")
        assert result.returncode == 0, result.stderr
        assert "within the bound: True" in result.stdout

    def test_python_dash_m_repro(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "srr" in result.stdout
        assert "e12" in result.stdout
