"""Tests for the QoS control plane (admission + delay quotes)."""

import pytest

from repro.core import AdmissionError, ConfigurationError
from repro.net import CBRSource, Network, TokenBucketShaper
from repro.qos import AdmissionController


def make_net(scheduler="srr", **kw):
    net = Network(default_scheduler=scheduler, default_scheduler_kwargs=kw)
    for n in ("a", "r1", "r2", "b"):
        net.add_node(n)
    net.add_link("a", "r1", rate_bps=10e6, delay=0.001)
    net.add_link("r1", "r2", rate_bps=1e6, delay=0.005)
    net.add_link("r2", "b", rate_bps=10e6, delay=0.001)
    return net


class TestAdmission:
    def test_admits_within_capacity(self):
        cac = AdmissionController(make_net())
        res = cac.request("f1", "a", "b", 400_000)
        assert res.flow_id == "f1"
        assert res.path == ["a", "r1", "r2", "b"]
        assert cac.reserved_bps("r1", "r2") == 400_000

    def test_rejects_over_capacity(self):
        cac = AdmissionController(make_net())
        cac.request("f1", "a", "b", 800_000)
        with pytest.raises(AdmissionError):
            cac.request("f2", "a", "b", 400_000)  # 1.2 M > 1 M bottleneck
        assert cac.rejections == 1
        assert "f2" not in cac.reservations
        # The rejected flow was not half-installed anywhere.
        assert not make_net().port("r1", "r2").scheduler.has_flow("f2")

    def test_utilization_limit(self):
        cac = AdmissionController(make_net(), utilization_limit=0.5)
        cac.request("f1", "a", "b", 450_000)
        with pytest.raises(AdmissionError):
            cac.request("f2", "a", "b", 100_000)

    def test_release_frees_capacity(self):
        cac = AdmissionController(make_net())
        cac.request("f1", "a", "b", 900_000)
        cac.release("f1")
        assert cac.reserved_bps("r1", "r2") == 0
        cac.request("f2", "a", "b", 900_000)  # fits again

    def test_release_is_idempotent(self):
        cac = AdmissionController(make_net())
        cac.request("f1", "a", "b", 100_000)
        assert cac.release("f1") is True
        assert cac.release("f1") is False  # second release is a no-op
        assert cac.release("ghost") is False

    def test_release_strict_raises_on_unknown(self):
        cac = AdmissionController(make_net())
        with pytest.raises(ConfigurationError):
            cac.release("ghost", strict=True)

    def test_release_survives_lost_path_node(self):
        """Teardown must free reserved bandwidth even if part of the
        reserved path has vanished (e.g. torn down out of band)."""
        net = make_net()
        cac = AdmissionController(net)
        cac.request("f1", "a", "b", 400_000)
        net.port("r1", "r2").scheduler.remove_flow("f1")
        del net.nodes["r1"].ports["r2"]
        assert cac.release("f1") is True
        assert "f1" not in cac.reservations
        assert cac.reserved_bps("r2", "b") == 0

    def test_release_leaves_no_phantom_reservation(self):
        """Repeated admit/release cycles must not accumulate float-drift
        phantom reservations that eventually reject valid requests."""
        cac = AdmissionController(make_net())
        for i in range(50):
            cac.request(f"f{i}", "a", "b", 1e6 / 3)
            cac.release(f"f{i}")
        assert cac.reserved_bps("r1", "r2") == 0
        cac.request("final", "a", "b", 900_000)  # full capacity again

    def test_duplicate_reservation_rejected(self):
        cac = AdmissionController(make_net())
        cac.request("f1", "a", "b", 100_000)
        with pytest.raises(AdmissionError):
            cac.request("f1", "a", "b", 100_000)

    def test_flow_installed_on_path(self):
        net = make_net()
        cac = AdmissionController(net)
        cac.request("f1", "a", "b", 100_000)
        assert net.port("a", "r1").scheduler.has_flow("f1")
        assert net.port("r1", "r2").scheduler.has_flow("f1")
        assert net.port("r2", "b").scheduler.has_flow("f1")

    def test_g3_structural_rejection_counts(self):
        net = make_net("g3", capacity=15)
        cac = AdmissionController(net, weight_unit_bps=1e6 / 15)
        cac.request("f1", "a", "b", 8 / 15 * 1e6)
        # Bandwidth would fit 7/15 more, but no second depth-3 tree
        # exists: G-3 rejects structurally.
        with pytest.raises(AdmissionError):
            cac.request("f2", "a", "b", 8 / 15 * 1e6)
        assert cac.rejections >= 1


class TestQuotes:
    def test_srr_quote_composes_hops(self):
        cac = AdmissionController(make_net("srr"))
        res = cac.request("f1", "a", "b", 160_000, sigma_bytes=400)
        quote = res.quote
        assert quote.guaranteed
        assert len(quote.per_hop) == 3
        assert quote.burst == pytest.approx(400 * 8 / 160_000)
        assert quote.total == pytest.approx(
            quote.burst + sum(quote.per_hop) + quote.path
        )
        # SRR quotes are conservative: worst-case N on the 1 Mb/s link.
        assert quote.total > 0.05

    def test_g3_quote_tighter_than_srr(self):
        """The headline of the follow-on work: N-independent bounds make
        G-3's quotes far tighter than SRR's worst-case-N quotes."""
        srr_quote = (
            AdmissionController(make_net("srr"))
            .request("f", "a", "b", 160_000)
            .quote
        )
        g3_quote = (
            AdmissionController(
                make_net("g3", capacity=625), weight_unit_bps=1e6 / 625
            )
            .request("f", "a", "b", 160_000)
            .quote
        )
        assert g3_quote.guaranteed
        assert g3_quote.total < srr_quote.total / 2

    def test_fifo_quote_not_guaranteed(self):
        cac = AdmissionController(make_net("fifo"))
        res = cac.request("f1", "a", "b", 100_000)
        assert not res.quote.guaranteed
        assert res.quote.total == pytest.approx(res.quote.path)

    def test_wfq_quote_flat_in_n(self):
        cac = AdmissionController(make_net("wfq"))
        res = cac.request("f1", "a", "b", 100_000, sigma_bytes=200)
        quote1 = res.quote
        # Admit many more flows; a new identical reservation quotes the
        # same bound (no N term).
        for i in range(20):
            cac.request(f"bg{i}", "a", "b", 20_000)
        quote2 = cac.request("f2", "a", "b", 100_000, sigma_bytes=200).quote
        assert quote2.total == pytest.approx(quote1.total)

    def test_quote_holds_in_simulation(self):
        """End to end: admit a shaped flow, run under saturation, verify
        every measured delay is below the quote."""
        net = make_net("srr")
        cac = AdmissionController(net, utilization_limit=1.0)
        res = cac.request("gold", "a", "b", 160_000, sigma_bytes=400)
        shaper = TokenBucketShaper(sigma_bytes=400, rate_bps=160_000)
        net.attach_source(
            "gold", CBRSource(160_000, packet_size=200), shaper=shaper
        )
        # Fill the bottleneck with competing reserved flows.
        for i in range(40):
            fid = f"bg{i}"
            cac.request(fid, "a", "b", 16_000)
            net.attach_source(fid, CBRSource(16_000, packet_size=200))
        net.run(until=3.0)
        delays = net.sinks.delays("gold")
        assert delays
        assert max(delays) <= res.quote.total