"""Integration tests for the canonical experiment scenarios."""

import pytest

from repro.core import ConfigurationError
from repro.bench.scenarios import (
    BOTTLENECK_BPS,
    WEIGHT_UNIT_BPS,
    dumbbell_network,
    single_bottleneck_network,
    slots_for_rate,
)


class TestSlotsForRate:
    def test_exact(self):
        assert slots_for_rate(32_000, 625, 10e6) == 2

    def test_rounds_up(self):
        assert slots_for_rate(33_000, 625, 10e6) == 3

    def test_minimum_one(self):
        assert slots_for_rate(1, 625, 10e6) == 1


class TestDumbbell:
    def test_structure(self):
        net = dumbbell_network("srr", n_background=10)
        # 5 hosts + 3 routers + 5 destinations.
        assert len(net.nodes) == 13
        # Tagged + background + 2 best-effort flows.
        assert len(net.flows) == 2 + 10 + 2
        # The scheduler under test sits on the two bottleneck directions.
        assert type(net.port("R0", "R1").scheduler).__name__ == "SRRScheduler"
        assert type(net.port("R1", "R2").scheduler).__name__ == "SRRScheduler"
        # Access links are plain FIFO.
        assert type(net.port("h0", "R0").scheduler).__name__ == "FIFOScheduler"

    def test_weights_follow_units(self):
        net = dumbbell_network("srr", n_background=5)
        bott = net.port("R0", "R1").scheduler
        assert bott.flow_state("f1").weight == 2      # 32k / 16k
        assert bott.flow_state("f2").weight == 64     # 1024k / 16k
        assert bott.flow_state("bg0").weight == 1

    def test_g3_capacity_and_best_effort(self):
        net = dumbbell_network("g3", n_background=5)
        sched = net.port("R0", "R1").scheduler
        assert sched.capacity == BOTTLENECK_BPS // WEIGHT_UNIT_BPS
        assert sched.flow_state("be1").weight == 0

    def test_short_run_delivers_all_classes(self):
        net = dumbbell_network("srr", n_background=20)
        net.run(until=1.0)
        assert net.sinks.flow("f1").packets > 0
        assert net.sinks.flow("f2").packets > 0
        assert net.sinks.flow("bg0").packets > 0
        assert net.sinks.flow("be1").packets > 0

    @pytest.mark.parametrize("name", ["srr", "drr", "wfq", "g3", "rrr"])
    def test_every_scheduler_builds_and_runs(self, name):
        net = dumbbell_network(name, n_background=10)
        net.run(until=0.5)
        assert net.sinks.total_packets > 0


class TestSingleBottleneck:
    def test_reservation_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            single_bottleneck_network("srr", n_flows=700)

    def test_tagged_flow_keeps_its_rate(self):
        net = single_bottleneck_network("srr", n_flows=64)
        net.run(until=3.0)
        rec = net.sinks.flow("tag")
        goodput = rec.throughput_bps(1.0, 3.0)
        assert goodput == pytest.approx(32_000, rel=0.15)

    def test_delay_grows_with_n(self):
        worst = {}
        for n in (16, 128):
            net = single_bottleneck_network("srr", n_flows=n)
            net.run(until=2.0)
            worst[n] = max(net.sinks.delays("tag"))
        assert worst[128] > worst[16] * 3
