"""Queue-backend equivalence: ``--engine heap`` vs ``--engine calendar``.

The backend is a pure wall-time optimisation — both dequeue in exactly
``(time, seq)`` order — so it must be invisible in every result: stable
experiment artifacts (E5, E13), packet-lifecycle traces, fault-plan
replays, and invariant-guard verdicts are asserted bit-identical here.
"""

import json

from repro.bench.runner import run_config
from repro.bench.scenarios import single_bottleneck_network
from repro.faults import FaultInjector, FaultSpec, build_fault_plan
from repro.net import CBRSource, Network
from repro.net.eventq import ENGINE_ENV_VAR
from repro.obs.trace import Tracer, trace_network

ENGINES = ("heap", "calendar")


def _stable(name, engine, **overrides):
    result = run_config(
        name, scale="quick", engine=engine,
        overrides=overrides or None,
    )
    return result


class TestArtifactIdentity:
    def test_e5_artifacts_bit_identical(self):
        runs = {kind: _stable("e5", kind) for kind in ENGINES}
        stable = {k: r.stable_json_dict() for k, r in runs.items()}
        assert stable["heap"] == stable["calendar"]
        # The artifact equality must be textual too (what lands on disk).
        assert (
            json.dumps(stable["heap"], sort_keys=True)
            == json.dumps(stable["calendar"], sort_keys=True)
        )
        # The backend choice is recorded in the raw (non-stable) form,
        # so the comparison above is not vacuous.
        for kind, result in runs.items():
            assert result.to_json_dict()["config"]["engine"] == kind

    def test_e13_artifacts_bit_identical_with_invariants(self):
        runs = {
            kind: _stable("e13", kind, check_invariants=True)
            for kind in ENGINES
        }
        stable = {k: r.stable_json_dict() for k, r in runs.items()}
        assert stable["heap"] == stable["calendar"]
        # E13 drives real simulators, so queue_kind lands in the
        # engine block — proving each run used its requested backend.
        for kind, result in runs.items():
            assert result.engine["queue_kind"] == kind
        # Invariant guards see the same world under the new engine:
        # same number of checks, zero violations on both.
        for result in runs.values():
            assert result.metrics["violations_total"] == 0
            assert result.metrics["checks_total"] > 0
        assert (
            runs["heap"].metrics["checks_total"]
            == runs["calendar"].metrics["checks_total"]
        )
        # Fault plans are built from the config seed, not the engine.
        assert (
            runs["heap"].metrics["plan_signatures"]
            == runs["calendar"].metrics["plan_signatures"]
        )


class TestTraceIdentity:
    def test_packet_traces_hash_identical(self, monkeypatch):
        def traced_run(kind):
            # Ports capture the simulator at link creation, so the
            # backend must be chosen before the network is built —
            # exactly how the harness does it (REPRO_ENGINE).
            monkeypatch.setenv(ENGINE_ENV_VAR, kind)
            net = single_bottleneck_network("srr", n_flows=8)
            assert net.sim.queue_kind == kind
            tracer = trace_network(net, Tracer(capacity=1 << 18))
            net.run(until=0.25)
            assert tracer.dropped == 0
            # Packet uids come from a process-global counter, so two
            # runs in one process see different absolute values.
            # Renumber by first appearance: packet identity structure
            # is preserved, the arbitrary offset is not.
            remap = {}
            events = []
            for e in tracer.events():
                e = dict(e)
                if "uid" in e:
                    e["uid"] = remap.setdefault(e["uid"], len(remap))
                events.append(json.dumps(e, sort_keys=True))
            return events

        traces = {kind: traced_run(kind) for kind in ENGINES}
        assert traces["heap"]  # non-vacuous: packets actually traced
        assert traces["heap"] == traces["calendar"]


class TestFaultReplayIdentity:
    def test_plan_replay_identical_across_engines(self):
        spec = FaultSpec(
            churn_rate_hz=3.0, flap_rate_hz=2.0,
            burst_rate_hz=2.0, malformed_rate_hz=2.0,
        )

        def run_once(kind):
            net = Network(default_scheduler="srr", engine=kind)
            for n in ("a", "r", "b"):
                net.add_node(n)
            net.add_link("a", "r", rate_bps=10e6, delay=0.0001)
            net.add_link("r", "b", rate_bps=1e6, delay=0.0001)
            net.add_flow("f1", "a", "b", weight=1)
            net.attach_source("f1", CBRSource(200_000, packet_size=200))
            plan = build_fault_plan(
                spec, seed=11, duration=2.0,
                links=[("r", "b")], churn_route=("a", "b"), burst_node="a",
            )
            inj = FaultInjector(net, plan, fault_route=("a", "b"))
            inj.install()
            net.run(until=2.0)
            assert net.sim.queue_kind == kind
            return plan.signature(), inj.fired, net.sinks.flow("f1").packets

        assert run_once("heap") == run_once("calendar")
