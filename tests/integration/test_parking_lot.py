"""Integration tests for the parking-lot topology + per-hop tracing."""

import pytest

from repro.core import ConfigurationError
from repro.bench.scenarios import parking_lot_network
from repro.net import HopTrace


class TestParkingLot:
    def test_structure_and_delivery(self):
        net = parking_lot_network("srr", hops=3, cross_flows_per_hop=10)
        net.run(until=1.5)
        assert net.sinks.flow("tag").packets > 0
        # Cross traffic at every hop got through too.
        for h in range(3):
            assert net.sinks.flow(f"x{h}_0").packets > 0

    def test_reservation_check(self):
        with pytest.raises(ConfigurationError):
            parking_lot_network("srr", hops=2, cross_flows_per_hop=1000)
        with pytest.raises(ConfigurationError):
            parking_lot_network("srr", hops=0)

    def test_delay_grows_with_hops(self):
        """The composition story: each contended hop adds latency. Mean
        delay compounds nearly additively; the worst case grows too but
        sub-additively (worst-case phases rarely align across hops —
        which is why Corollary 1's additive bound is an upper envelope)."""
        mean, worst = {}, {}
        for hops in (1, 3):
            net = parking_lot_network("srr", hops=hops,
                                      cross_flows_per_hop=40)
            net.run(until=2.0)
            delays = net.sinks.delays("tag")
            mean[hops] = sum(delays) / len(delays)
            worst[hops] = max(delays)
        assert mean[3] > mean[1] * 1.6
        assert worst[3] > worst[1]

    def test_hop_trace_decomposition(self):
        hops = 3
        net = parking_lot_network("srr", hops=hops, cross_flows_per_hop=30)
        ports = [net.port(f"R{i}", f"R{i + 1}") for i in range(hops)]
        trace = HopTrace(ports, "tag")
        net.run(until=2.0)
        rows = trace.per_hop_delays()
        assert rows, "no fully traced packets"
        assert all(len(row) == hops for row in rows)
        # Per-hop components are positive and sum to slightly less than
        # the end-to-end delay (the final access hop is not traced).
        delays = net.sinks.delays("tag")
        assert max(sum(row) for row in rows) <= max(delays) + 1e-9
        worst = trace.worst_per_hop()
        assert len(worst) == hops
        assert all(w > 0 for w in worst)

    def test_every_hop_contended(self):
        net = parking_lot_network("srr", hops=2, cross_flows_per_hop=40)
        net.run(until=1.0)
        for i in range(2):
            port = net.port(f"R{i}", f"R{i + 1}")
            assert port.packets_out > 500  # cross + tagged traffic flowed
