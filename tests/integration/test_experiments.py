"""Tiny-scale smoke tests of every experiment function and the CLI.

The benches in ``benchmarks/`` assert the result *shapes* at realistic
scale; these tests only pin the harness plumbing (structure of the
returned dicts, quiet mode, CLI dispatch) so refactors are caught fast.
"""

import pytest

from repro.core import ConfigurationError
from repro.bench import run_experiment
from repro.bench.runner import EXPERIMENTS, main


class TestExperimentFunctions:
    def test_e1(self, capsys):
        result = run_experiment("e1", max_order=6)
        assert result["all_counts_ok"] and result["all_spacing_ok"]
        assert "E1" in capsys.readouterr().out

    def test_e2(self):
        result = run_experiment(
            "e2", schedulers=("srr", "wrr"), n_flows=6, rounds=4, quiet=True
        )
        assert set(result) == {"srr", "wrr"}
        assert result["srr"]["heavy"]["services"] > 0

    def test_e5(self):
        result = run_experiment(
            "e5", schedulers=("srr",), n_values=(8, 32), measure=200,
            quiet=True,
        )
        assert set(result["srr"]) == {8, 32}

    def test_e6(self):
        result = run_experiment(
            "e6", schedulers=("srr", "rr"), n_flows=6, rounds=4, quiet=True
        )
        assert result["srr"]["jain"] > result["rr"]["jain"] - 1e-9

    def test_e9(self):
        result = run_experiment(
            "e9", wss_order=10, stored_order=6, lookups=500, quiet=True
        )
        assert result["wss"]["closed form (v2+1)"]["entries"] == 0
        assert "full" in result["tarray"]

    def test_e10(self):
        result = run_experiment("e10", n_flows=8, rounds=6, quiet=True)
        for name in ("srr", "g3", "rrr"):
            assert all(case["ok"] for case in result[name])

    def test_e3_small(self):
        result = run_experiment(
            "e3", schedulers=("srr",), duration=0.5, n_background=10,
            quiet=True,
        )
        assert result["srr"]["f1"]["packets"] > 0

    def test_e4_small(self):
        result = run_experiment(
            "e4", schedulers=("srr",), n_values=(8,), duration=0.5,
            quiet=True,
        )
        assert 8 in result["srr"]

    def test_e7_small(self):
        result = run_experiment(
            "e7", schedulers=("srr",), duration=1.0, n_background=10,
            quiet=True,
        )
        assert result["srr"]["f2"]["goodput_bps"] > 0

    def test_e8_small(self):
        result = run_experiment(
            "e8", schedulers=("g3",), duration=0.5, n_background=10,
            quiet=True,
        )
        assert result["g3"]["f1"]["max_ms"] > 0
        assert result["bounds"]["f1"] > 0

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("e99")

    def test_e11(self):
        result = run_experiment("e11", rounds=40, quiet=True)
        assert result["srr packet"] > result["srr deficit"]

    def test_e12(self):
        result = run_experiment(
            "e12", schedulers=("srr", "g3"), validate=False, quiet=True
        )
        assert result["g3"]["total_ms"] < result["srr"]["total_ms"]

    def test_e13(self):
        result = run_experiment(
            "e13", schedulers=("srr",), intensities=(0.0, 4.0),
            duration=1.0, n_flows=4, check_invariants=True, quiet=True,
        )
        assert result["violations_total"] == 0
        assert result["checks_total"] > 0
        assert result["srr"][4.0]["faults_fired"] > 0
        # Intensity 0 runs a fault-free baseline.
        assert result["srr"][0.0]["faults_fired"] == 0
        assert 0 < result["srr"][0.0]["jain"] <= 1.0

    def test_e15(self):
        result = run_experiment(
            "e15", topology="dumbbell2", shards=(1, 2),
            duration=0.1, quiet=True,
        )
        assert result["digests_ok"] is True
        assert result["events"] > 0
        assert result["best_shards"] in (1, 2)

    def test_registry_complete(self):
        assert sorted(EXPERIMENTS) == sorted(
            f"e{i}" for i in range(1, 17)
        )

    def test_e16(self):
        result = run_experiment(
            "e16", flow_counts=(2,), seeds_per_case=1, quiet=True,
        )
        assert result["all_certified"] is True
        assert 0 < result["worst_ratio"] <= 1.0
        for disc in ("srr", "drr", "wrr", "iwrr"):
            assert 0 < result[f"worst_ratio_{disc}"] <= 1.0


class TestCLI:
    def test_single_experiment(self, capsys):
        assert main(["e1"]) == 0
        assert "Weight Spread Sequence" in capsys.readouterr().out

    def test_bad_name_exits(self):
        with pytest.raises(SystemExit):
            main(["e99"])

    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "e10" in out and "O(1)" in out
