"""Tests for repro.analysis.fairness."""

import pytest

from repro.core import ConfigurationError
from repro.analysis import (
    gap_statistics,
    jain_index,
    service_fairness_index,
    worst_case_lag,
)


class TestJain:
    def test_equal_shares_is_one(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_one_hog_is_one_over_n(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_intermediate(self):
        idx = jain_index([4, 2])
        assert 0.5 < idx < 1.0

    def test_all_zero_vacuous(self):
        assert jain_index([0, 0]) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            jain_index([])
        with pytest.raises(ConfigurationError):
            jain_index([1, -1])


def interleaved_trace(n_rounds, size=100):
    """Perfectly alternating a/b trace, 1 unit of time per packet."""
    trace = []
    t = 0.0
    for _ in range(n_rounds):
        for fid in ("a", "b"):
            t += 1.0
            trace.append((t, fid, size))
    return trace


def bursty_trace(n_rounds, burst=8, size=100):
    """WRR-like: `burst` of a, then `burst` of b, per round."""
    trace = []
    t = 0.0
    for _ in range(n_rounds):
        for fid in ("a", "b"):
            for _ in range(burst):
                t += 1.0
                trace.append((t, fid, size))
    return trace


class TestSFI:
    def test_zero_for_perfect_interleave_full_window(self):
        trace = interleaved_trace(50)
        sfi = service_fairness_index(
            trace, {"a": 1, "b": 1}, window=2.0, step=2.0
        )
        assert sfi == pytest.approx(0.0)

    def test_bursty_trace_scores_worse(self):
        smooth = service_fairness_index(
            interleaved_trace(50), {"a": 1, "b": 1}, window=8.0
        )
        bursty = service_fairness_index(
            bursty_trace(13), {"a": 1, "b": 1}, window=8.0
        )
        assert bursty > smooth + 100

    def test_weights_normalise(self):
        # a served twice as often with weight 2: perfectly fair.
        trace = []
        t = 0.0
        for _ in range(30):
            for fid in ("a", "a", "b"):
                t += 1.0
                trace.append((t, fid, 100))
        sfi = service_fairness_index(
            trace, {"a": 2, "b": 1}, window=3.0, step=3.0
        )
        assert sfi == pytest.approx(0.0)

    def test_ignores_unlisted_flows(self):
        trace = interleaved_trace(10) + [(100.0, "bg", 10000)]
        sfi = service_fairness_index(trace, {"a": 1, "b": 1}, window=5.0)
        assert sfi < 200

    def test_empty_trace(self):
        assert service_fairness_index([], {"a": 1}, window=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            service_fairness_index([(0, "a", 1)], {"a": 1}, window=0)


class TestWorstCaseLag:
    def test_interleaved_small_lag(self):
        lag = worst_case_lag(interleaved_trace(50), {"a": 1, "b": 1})
        assert lag["a"] <= 100
        assert lag["b"] <= 100

    def test_bursty_large_lag(self):
        lag = worst_case_lag(bursty_trace(10, burst=8), {"a": 1, "b": 1})
        # While a's burst of 8 is served, b falls ~4 packets behind.
        assert lag["b"] >= 300

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            worst_case_lag([], {"a": 0})


class TestWorstCaseFairness:
    def make_records(self, events):
        from repro.net import DeliveryRecord

        return [
            DeliveryRecord("f", seq, size, created, delivered)
            for seq, (size, created, delivered) in enumerate(events)
        ]

    def test_exactly_served_at_rate_gives_zero(self):
        # rate 8000 bps = 1000 B/s; 100 B packets arrive together at t=0
        # and leave every 0.1 s: delay of packet k = (k+1)*0.1 =
        # backlog/r exactly.
        from repro.analysis import worst_case_fairness

        events = [(100, 0.0, 0.1 * (k + 1)) for k in range(5)]
        wcf = worst_case_fairness(self.make_records(events), 8000)
        assert wcf == pytest.approx(0.0, abs=1e-12)

    def test_late_service_measured(self):
        from repro.analysis import worst_case_fairness

        # Single packet, no backlog beyond itself: due at 0.1, left 0.5.
        events = [(100, 0.0, 0.5)]
        wcf = worst_case_fairness(self.make_records(events), 8000)
        assert wcf == pytest.approx(0.4)

    def test_early_service_negative(self):
        from repro.analysis import worst_case_fairness

        events = [(100, 0.0, 0.05)]
        wcf = worst_case_fairness(self.make_records(events), 8000)
        assert wcf < 0

    def test_backlog_accounting(self):
        from repro.analysis import worst_case_fairness

        # Packet 0 arrives at 0 and leaves late at 1.0; packet 1 arrives
        # at 0.5 (packet 0 still queued -> backlog 200 B -> due 0.7).
        events = [(100, 0.0, 1.0), (100, 0.5, 1.1)]
        wcf = worst_case_fairness(self.make_records(events), 8000)
        assert wcf == pytest.approx(0.9)  # packet 0's lateness dominates

    def test_validation(self):
        from repro.analysis import worst_case_fairness

        with pytest.raises(ConfigurationError):
            worst_case_fairness([], 8000)
        with pytest.raises(ConfigurationError):
            worst_case_fairness([], 0)


class TestGapStats:
    def test_periodic_sequence(self):
        seq = ["a", "b", "a", "b", "a", "b"]
        g = gap_statistics(seq, "a")
        assert g.min_gap == g.max_gap == 2
        assert g.cv == 0.0
        assert g.services == 3

    def test_bursty_sequence(self):
        seq = ["a", "a", "a", "b", "b", "b", "a", "a", "a", "b", "b", "b"]
        g = gap_statistics(seq, "a")
        assert g.max_gap == 4
        assert g.min_gap == 1
        assert g.cv > 0.5

    def test_requires_two_services(self):
        with pytest.raises(ConfigurationError):
            gap_statistics(["a", "b", "b"], "a")
