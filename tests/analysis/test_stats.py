"""Tests for replication statistics."""

import pytest

from repro.core import ConfigurationError
from repro.analysis.stats import (
    ReplicationSummary,
    summarize_replications,
    t_critical,
)


class TestTCritical:
    def test_small_df_values(self):
        assert t_critical(1) == pytest.approx(12.706)
        assert t_critical(4) == pytest.approx(2.776)
        assert t_critical(30) == pytest.approx(2.042)

    def test_large_df_normal(self):
        assert t_critical(200) == pytest.approx(1.96)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            t_critical(0)


class TestSummarize:
    def test_single_value(self):
        s = summarize_replications([5.0])
        assert s.mean == 5.0
        assert s.ci95 == 0.0
        assert s.n == 1

    def test_known_case(self):
        # Values 1..5: mean 3, sample std sqrt(2.5).
        s = summarize_replications([1, 2, 3, 4, 5])
        assert s.mean == 3.0
        assert s.stddev == pytest.approx(2.5 ** 0.5)
        expected_ci = 2.776 * s.stddev / 5 ** 0.5
        assert s.ci95 == pytest.approx(expected_ci)
        assert s.low == pytest.approx(3 - expected_ci)
        assert s.high == pytest.approx(3 + expected_ci)

    def test_zero_variance(self):
        s = summarize_replications([2.0, 2.0, 2.0])
        assert s.ci95 == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_replications([])

    def test_str_format(self):
        assert "n=3" in str(summarize_replications([1.0, 2.0, 3.0]))
