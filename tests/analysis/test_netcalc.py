"""Network-calculus curve algebra and per-discipline service curves."""

import math

import pytest

from repro.analysis.netcalc import (
    NETCALC_DISCIPLINES,
    RateLatency,
    TokenBucket,
    backlog_bound,
    convolve,
    deconvolve,
    delay_bound,
    drr_service_curve,
    iwrr_service_curve,
    service_curve,
    srr_service_curve,
    wrr_service_curve,
)
from repro.core import ConfigurationError


class TestCurves:
    def test_token_bucket_bytes_at(self):
        tb = TokenBucket(sigma_bytes=500.0, rho_bps=8_000.0)
        assert tb.bytes_at(1e-9) == pytest.approx(500.0)
        assert tb.bytes_at(1.0) == 500.0 + 1_000.0  # 8 kbit/s = 1 kB/s
        assert tb.bytes_at(0.0) == 0.0  # empty window
        assert tb.bytes_at(-5.0) == 0.0

    def test_rate_latency_bytes_at(self):
        beta = RateLatency(rate_bps=8_000.0, latency_s=0.5)
        assert beta.bytes_at(0.5) == 0.0
        assert beta.bytes_at(1.5) == pytest.approx(1_000.0)
        assert beta.bytes_at(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(sigma_bytes=-1.0, rho_bps=100.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(sigma_bytes=1.0, rho_bps=-100.0)
        with pytest.raises(ConfigurationError):
            RateLatency(rate_bps=0.0, latency_s=0.0)
        with pytest.raises(ConfigurationError):
            RateLatency(rate_bps=100.0, latency_s=-0.1)


class TestAlgebra:
    def test_convolve_takes_min_rate_sum_latency(self):
        a = RateLatency(1e6, 0.010)
        b = RateLatency(2e6, 0.002)
        c = convolve(a, b)
        assert c.rate_bps == 1e6
        assert c.latency_s == pytest.approx(0.012)

    def test_deconvolve_output_burst(self):
        # Output of (sigma, rho) through (R, T): burst grows by rho*T.
        arrival = TokenBucket(1_000.0, 80_000.0)
        service = RateLatency(160_000.0, 0.1)
        out = deconvolve(arrival, service)
        assert out.rho_bps == arrival.rho_bps
        assert out.sigma_bytes == pytest.approx(1_000.0 + 80_000.0 * 0.1 / 8)
        with pytest.raises(ConfigurationError):
            deconvolve(TokenBucket(0.0, 2e6), RateLatency(1e6, 0.0))

    def test_delay_and_backlog_bounds(self):
        arrival = TokenBucket(1_000.0, 80_000.0)
        service = RateLatency(160_000.0, 0.1)
        # D = T + sigma/R, B = sigma + rho*T (all in consistent units).
        assert delay_bound(arrival, service) == pytest.approx(
            0.1 + 1_000.0 * 8 / 160_000.0
        )
        assert backlog_bound(arrival, service) == pytest.approx(
            1_000.0 + 80_000.0 * 0.1 / 8
        )

    def test_unstable_flow_gets_infinite_delay(self):
        arrival = TokenBucket(0.0, 2e6)
        service = RateLatency(1e6, 0.01)
        assert delay_bound(arrival, service) == math.inf
        assert backlog_bound(arrival, service) == math.inf


class TestDisciplineCurves:
    KW = dict(packet_size=250, link_rate_bps=2e6)

    def test_rates_are_weight_shares(self):
        for fn in (srr_service_curve, wrr_service_curve,
                   iwrr_service_curve):
            beta = fn(4, [4, 4, 2, 1], **self.KW)
            assert beta.rate_bps == pytest.approx(2e6 * 4 / 11)
        beta = drr_service_curve(4.0, [4.0, 4.0, 2.0, 1.0], 1500,
                                 **self.KW)
        assert beta.rate_bps == pytest.approx(2e6 * 4 / 11)

    def test_iwrr_latency_beats_wrr(self):
        """Interleaving spreads the competitors' bursts: for flows that
        do not dominate the round (w <= W/2, where WRR makes them wait
        out every competitor's full burst) the IWRR curve must start no
        later than WRR's (the point of arXiv 2003.08372). Dominant flows
        can see the opposite because our IWRR latency carries an (n+2)
        packet-slot dynamic-join slack."""
        for weights in ([4, 4, 2, 1], [8, 2], [3, 5, 7], [16, 4, 2],
                        [6, 6, 6]):
            total = sum(weights)
            for w in set(weights):
                if 2 * w > total:
                    continue
                iwrr = iwrr_service_curve(w, weights, **self.KW)
                wrr = wrr_service_curve(w, weights, **self.KW)
                assert iwrr.latency_s <= wrr.latency_s + 1e-12

    def test_wrr_closed_form(self):
        # (W - w + 2) slots of L at C.
        beta = wrr_service_curve(2, [2, 3], **self.KW)
        slot = 250 * 8 / 2e6
        assert beta.latency_s == pytest.approx((5 - 2 + 2) * slot)

    def test_single_flow_latency_small(self):
        """A lone flow owns the link: latency stays within a few packet
        slots for every discipline."""
        slot = 250 * 8 / 2e6
        for d in NETCALC_DISCIPLINES:
            beta = service_curve(d, weight=3, weights=[3],
                                 packet_size=250, link_rate_bps=2e6)
            assert beta.rate_bps == pytest.approx(2e6)
            assert beta.latency_s <= 8 * slot

    def test_drr_generic_latency_covers_tiny_quanta(self):
        """Sub-packet per-round quanta (fractional DRR weights) still get
        a finite curve from the generic deficit argument."""
        beta = drr_service_curve(0.05, [0.05, 4.0], 1500, **self.KW)
        assert beta.rate_bps > 0
        assert math.isfinite(beta.latency_s)

    def test_drr_stiliadis_varma_kicks_in_for_large_quanta(self):
        """With per-round credit >= L the SV/NC2 forms apply and must
        only ever tighten the generic bound."""
        phi = [4.0, 2.0, 1.0]
        tight = drr_service_curve(4.0, phi, 1500, **self.KW)
        # Recompute the generic-only value by scaling: weight 4 with
        # quantum 250 has credit 1000 >= L? 4*250=1000 >= 250, still SV
        # territory; use a direct monotonicity check instead.
        assert math.isfinite(tight.latency_s)
        assert tight.latency_s > 0

    def test_latency_monotone_in_competitor_count(self):
        base = {"packet_size": 250, "link_rate_bps": 2e6}
        for d in NETCALC_DISCIPLINES:
            prev = None
            for n in (2, 4, 8, 16):
                beta = service_curve(d, weight=2, weights=[2] * n, **base)
                if prev is not None:
                    assert beta.latency_s >= prev - 1e-12
                prev = beta.latency_s


class TestDispatcher:
    def test_fast_suffix_is_stripped(self):
        a = service_curve("iwrr", weight=2, weights=[2, 3],
                          packet_size=250, link_rate_bps=2e6)
        b = service_curve("iwrr:fast", weight=2, weights=[2, 3],
                          packet_size=250, link_rate_bps=2e6)
        assert a == b

    def test_unknown_discipline_raises(self):
        with pytest.raises(ConfigurationError):
            service_curve("wfq", weight=1, weights=[1],
                          packet_size=250, link_rate_bps=2e6)

    def test_weight_must_be_in_set(self):
        with pytest.raises(ConfigurationError):
            service_curve("srr", weight=5, weights=[1, 2],
                          packet_size=250, link_rate_bps=2e6)

    def test_end_to_end_bound_is_finite_for_conformant_flow(self):
        for d in NETCALC_DISCIPLINES:
            beta = service_curve(d, weight=4, weights=[4, 2, 1, 1],
                                 packet_size=250, link_rate_bps=2e6)
            rho = 0.6 * beta.rate_bps
            bound = delay_bound(TokenBucket(250.0, rho), beta)
            assert math.isfinite(bound) and bound > 0
