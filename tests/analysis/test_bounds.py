"""Tests for the analytic delay bounds."""

import pytest

from repro.core import ConfigurationError
from repro.analysis import (
    end_to_end_bound,
    g3_delay_bound,
    nonzero_bits,
    rrr_delay_bound,
    srr_delay_bound,
    theta,
    wfq_delay_bound,
)


class TestHelpers:
    def test_nonzero_bits(self):
        assert nonzero_bits(0) == 0
        assert nonzero_bits(1) == 1
        assert nonzero_bits(0b1011) == 3
        with pytest.raises(ConfigurationError):
            nonzero_bits(-1)

    def test_theta_majorant(self):
        assert theta(0) == 1.0
        assert theta(5) == 5.0
        with pytest.raises(ConfigurationError):
            theta(-1)


class TestSRRBound:
    def test_linear_in_n(self):
        """Theorem 1's defining property: the bound grows linearly with
        the number of active flows."""
        kw = dict(weight=4, packet_size=200, link_rate_bps=10e6,
                  weight_unit_bps=16_000)
        b100 = srr_delay_bound(n_flows=100, **kw)
        b200 = srr_delay_bound(n_flows=200, **kw)
        b400 = srr_delay_bound(n_flows=400, **kw)
        assert b200 / b100 == pytest.approx(2.0, rel=0.01)
        assert b400 / b100 == pytest.approx(4.0, rel=0.01)

    def test_multi_bit_weight_adds_packet_terms(self):
        single = srr_delay_bound(4, 10, 200, 10e6, 16_000)
        multi = srr_delay_bound(7, 10, 200, 10e6, 16_000 * 4 / 7)
        # Same rate but m=3 bits: the (m-1) L/r terms appear.
        assert multi > single

    def test_paper_scale_example(self):
        """The simulation setup: f2 = 1024 kb/s on a 10 Mb/s link with
        ~503 flows, L = 200 B. Weight unit = 16 kb/s -> w = 64."""
        bound = srr_delay_bound(
            weight=64,
            n_flows=503,
            packet_size=200,
            link_rate_bps=10e6,
            weight_unit_bps=16_000,
        )
        # theta(6) * 503 * 0.16ms ~ 483 ms per node: large, proportional
        # to N — the paper's point about SRR.
        assert 0.2 < bound < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            srr_delay_bound(0, 10, 200, 1e6, 1000)
        with pytest.raises(ConfigurationError):
            srr_delay_bound(1, 0, 200, 1e6, 1000)
        with pytest.raises(ConfigurationError):
            srr_delay_bound(1, 1, 0, 1e6, 1000)


class TestRRRBound:
    def test_grid_dependence(self):
        """The paper's criticism: the same 32 kb/s flow has a much worse
        RRR bound on a finer slot grid (more bits in its slot weight)."""
        # 32 kb/s of 10 Mb/s. Grid 2^10: w = 3 (2 bits); grid 2^20:
        # w = 3355 (many bits).
        coarse_w = round(32_000 / 10e6 * 2**10)
        fine_w = round(32_000 / 10e6 * 2**20)
        coarse = rrr_delay_bound(coarse_w, 2**10, 200, 10e6)
        fine = rrr_delay_bound(fine_w, 2**20, 200, 10e6)
        assert fine > coarse * 1.5

    def test_paper_number_300ms(self):
        """Section II-C: r = 32 kb/s, C = 10 Mb/s, g = 20, L = 200 B,
        m = 6 gives d ~ 300 ms."""
        w = round(32_000 / 10e6 * 2**20)  # 3355: 7 set bits at this grid
        bound = rrr_delay_bound(w, 2**20, 200, 10e6)
        m = bin(w).count("1")
        rate = w / 2**20 * 10e6
        assert bound == pytest.approx(m * 200 * 8 / rate)
        assert bound > 0.25  # hundreds of milliseconds, as the paper notes

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rrr_delay_bound(0, 16, 200, 1e6)
        with pytest.raises(ConfigurationError):
            rrr_delay_bound(1, 10, 200, 1e6)  # not a power of two


class TestG3Bound:
    def test_independent_of_n(self):
        """Theorem 2 depends on capacity order and the flow, never on N —
        there is no N parameter to pass at all; check scale instead."""
        bound = g3_delay_bound(
            weight=2, capacity_slots=625, packet_size=200, link_rate_bps=10e6
        )
        # theta(9)*0.16ms + 1*L/r - 0.16ms with r = 32 kb/s: ~51.3 ms.
        assert 0.04 < bound < 0.08

    def test_paper_fig9_bounds(self):
        """Fig. 9 quotes G-3 upper bounds of ~122 ms (f1, 32 kb/s) and
        ~25.8 ms (f2, 1024 kb/s) END TO END over two 10 Mb/s hops plus
        20 ms propagation. Check the per-node pieces compose to the same
        ballpark."""
        f1 = g3_delay_bound(2, 625, 200, 10e6)     # 32 kb/s, w=2 (1 bit)
        f2 = g3_delay_bound(64, 625, 200, 10e6)    # 1024 kb/s, w=64 (1 bit)
        e2e_f1 = 2 * f1 + 0.020
        e2e_f2 = 2 * f2 + 0.020
        assert e2e_f1 == pytest.approx(0.122, abs=0.01)
        assert e2e_f2 == pytest.approx(0.0258, abs=0.004)

    def test_multibit_weights_pay_m_terms(self):
        one_bit = g3_delay_bound(64, 255, 200, 10e6)
        three_bits = g3_delay_bound(7 * 8, 255, 200, 10e6)
        assert three_bits > one_bit

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            g3_delay_bound(0, 255, 200, 1e6)
        with pytest.raises(ConfigurationError):
            g3_delay_bound(300, 255, 200, 1e6)


class TestDRRBound:
    def test_frame_dependence(self):
        """Like SRR, DRR's latency grows with the frame (i.e. with N)."""
        from repro.analysis import drr_delay_bound

        small = drr_delay_bound(1, 10, 200, 200, 10e6)
        large = drr_delay_bound(1, 100, 200, 200, 10e6)
        assert large > small * 8

    def test_formula(self):
        from repro.analysis import drr_delay_bound

        # (3F - 2phi)/C + L/C with F = 10*500, phi = 2*500.
        bound = drr_delay_bound(2, 10, 500, 200, 10e6)
        expected = (3 * 5000 - 2 * 1000) * 8 / 10e6 + 200 * 8 / 10e6
        assert bound == pytest.approx(expected)

    def test_validation(self):
        from repro.analysis import drr_delay_bound

        with pytest.raises(ConfigurationError):
            drr_delay_bound(0, 10, 200, 200, 1e6)
        with pytest.raises(ConfigurationError):
            drr_delay_bound(5, 2, 200, 200, 1e6)
        with pytest.raises(ConfigurationError):
            drr_delay_bound(1, 10, 0, 200, 1e6)


class TestWFQAndE2E:
    def test_wfq_bound_components(self):
        bound = wfq_delay_bound(
            sigma_bytes=1000, rate_bps=100_000, packet_size=200,
            link_rate_bps=10e6,
        )
        expected = 1000 * 8 / 100_000 + 200 * 8 / 100_000 + 200 * 8 / 10e6
        assert bound == pytest.approx(expected)

    def test_e2e_composition(self):
        total = end_to_end_bound(400, 32_000, [0.01, 0.02, 0.03])
        assert total == pytest.approx(400 * 8 / 32_000 + 0.06)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wfq_delay_bound(-1, 1000, 200, 1e6)
        with pytest.raises(ConfigurationError):
            end_to_end_bound(0, 0, [0.1])
        with pytest.raises(ConfigurationError):
            end_to_end_bound(1, 1, [-0.1])
