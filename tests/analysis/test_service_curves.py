"""Tests for service-curve utilities and table rendering."""

import pytest

from repro.core import ConfigurationError
from repro.analysis import (
    curve_from_finish_times,
    curve_from_records,
    format_table,
    horizontal_deviation,
    max_ideal_lag,
)


class TestCurves:
    def test_curve_from_finish_times(self):
        curve = curve_from_finish_times([0.3, 0.1, 0.2], 100)
        assert curve == [(0.1, 100), (0.2, 200), (0.3, 300)]

    def test_on_time_service_zero_deviation(self):
        # 100 B every 0.1 s = 8000 bps exactly.
        curve = [(0.1 * (i + 1), 100 * (i + 1)) for i in range(10)]
        assert horizontal_deviation(curve, 8000) == pytest.approx(0.0)

    def test_late_service_measured(self):
        curve = [(0.5, 100)]  # 100 B due at 0.1 s, arrived at 0.5 s
        assert horizontal_deviation(curve, 8000) == pytest.approx(0.4)

    def test_early_service_clamped_to_zero(self):
        curve = [(0.05, 100)]
        assert horizontal_deviation(curve, 8000) == 0.0

    def test_start_time_shift(self):
        curve = [(1.1, 100)]
        assert horizontal_deviation(curve, 8000, start_time=1.0) == pytest.approx(0.0)

    def test_unordered_curve_rejected(self):
        with pytest.raises(ConfigurationError):
            horizontal_deviation([(0.2, 100), (0.1, 200)], 8000)

    def test_max_ideal_lag_matches_definition(self):
        # Packets due at 0.1, 0.2, 0.3; actual 0.1, 0.25, 0.31.
        lag = max_ideal_lag([0.1, 0.25, 0.31], 8000, 100)
        assert lag == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            curve_from_finish_times([0.1], 0)
        with pytest.raises(ConfigurationError):
            max_ideal_lag([0.1], 0, 100)

    def test_curve_from_records_variable_sizes(self):
        curve = curve_from_records([0.3, 0.1, 0.2], [1500, 40, 200])
        assert curve == [(0.1, 40), (0.2, 240), (0.3, 1740)]

    def test_curve_from_records_validation(self):
        with pytest.raises(ConfigurationError):
            curve_from_records([0.1, 0.2], [100])  # length mismatch
        with pytest.raises(ConfigurationError):
            curve_from_records([0.1], [0])  # non-positive size
        with pytest.raises(ConfigurationError):
            curve_from_records([float("nan")], [100])

    def test_nan_finish_times_rejected(self):
        nan = float("nan")
        with pytest.raises(ConfigurationError):
            curve_from_finish_times([0.1, nan], 100)
        with pytest.raises(ConfigurationError):
            max_ideal_lag([0.1, nan], 8000, 100)

    def test_empty_curve_raises_not_zero(self):
        # A starved flow must surface as an error, never as a perfect
        # 0.0 deviation (the silent-zero bug E10 used to inherit).
        with pytest.raises(ConfigurationError):
            horizontal_deviation([], 8000)
        with pytest.raises(ConfigurationError):
            max_ideal_lag([], 8000, 100)


class TestTables:
    def test_alignment_and_rule(self):
        out = format_table(
            ["name", "value"],
            [["srr", 1.5], ["wfq", 22.125]],
            precision=2,
        )
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
        assert "1.50" in lines[2]
        assert "22.12" in lines[3]
        # Columns align: every line equally... rule spans the header.
        assert len(lines[1]) == len(lines[0])

    def test_title(self):
        out = format_table(["a"], [[1]], title="E1: demo")
        assert out.splitlines()[0] == "E1: demo"

    def test_non_float_cells(self):
        out = format_table(["x"], [[True], ["text"], [3]])
        assert "True" in out and "text" in out and "3" in out
