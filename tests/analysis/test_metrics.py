"""Tests for repro.analysis.metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ConfigurationError
from repro.analysis import jitter, percentile, summarize_delays


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        vals = [5.0, 1.0, 9.0]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_bounded_by_min_max(self, vals):
        for q in (0, 25, 50, 75, 100):
            p = percentile(vals, q)
            assert min(vals) <= p <= max(vals)


class TestSummarize:
    def test_basic_stats(self):
        s = summarize_delays([0.01, 0.02, 0.03, 0.04])
        assert s.count == 4
        assert s.mean == pytest.approx(0.025)
        assert s.minimum == 0.01
        assert s.maximum == 0.04
        assert s.p50 == pytest.approx(0.025)

    def test_constant_series(self):
        s = summarize_delays([0.5] * 10)
        assert s.stddev == 0.0
        assert s.p99 == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_delays([])

    def test_as_row_scales_to_ms(self):
        s = summarize_delays([0.010, 0.020])
        row = s.as_row()
        assert row[0] == 2
        assert row[1] == pytest.approx(15.0)  # mean in ms


class TestJitter:
    def test_constant_delay_no_jitter(self):
        assert jitter([0.1, 0.1, 0.1]) == 0.0

    def test_alternating(self):
        assert jitter([0.1, 0.2, 0.1, 0.2]) == pytest.approx(0.1)

    def test_short_series(self):
        assert jitter([]) == 0.0
        assert jitter([0.5]) == 0.0
