"""Property-based tests for the analytic delay bounds.

The closed forms in :mod:`repro.analysis.bounds` feed admission control
(E12) and the bound-validation experiments (E10/E16), so they must hold
the obvious structural properties over the whole parameter space, not
just the hand-picked examples in ``test_bounds.py``: every bound is a
positive finite number of seconds, SRR's grows monotonically with the
flow count, DRR's with the frame, and the degenerate corners (single
flow, weight-1, ``theta(0)``) stay finite rather than collapsing to zero
or diverging.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    drr_delay_bound,
    end_to_end_bound,
    g3_delay_bound,
    srr_delay_bound,
    theta,
    wfq_delay_bound,
)
from repro.core import ConfigurationError

# Physically plausible ranges: 64 B .. 9 kB packets, 64 kbps .. 100 Gbps
# links. Weight units stay below the link rate so reserved rates are
# feasible.
weights = st.integers(min_value=1, max_value=4096)
flow_counts = st.integers(min_value=1, max_value=100_000)
packet_sizes = st.integers(min_value=64, max_value=9000)
link_rates = st.floats(min_value=64e3, max_value=100e9,
                       allow_nan=False, allow_infinity=False)
unit_fracs = st.floats(min_value=1e-6, max_value=1e-2,
                       allow_nan=False, allow_infinity=False)


class TestSRRProperties:
    @given(w=weights, n=flow_counts, size=packet_sizes, rate=link_rates,
           frac=unit_fracs)
    @settings(max_examples=200, deadline=None)
    def test_positive_and_finite(self, w, n, size, rate, frac):
        bound = srr_delay_bound(w, n, size, rate, rate * frac)
        assert math.isfinite(bound)
        assert bound > 0

    @given(w=weights, n=st.integers(min_value=1, max_value=50_000),
           size=packet_sizes, rate=link_rates, frac=unit_fracs)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_n(self, w, n, size, rate, frac):
        unit = rate * frac
        smaller = srr_delay_bound(w, n, size, rate, unit)
        larger = srr_delay_bound(w, 2 * n, size, rate, unit)
        assert larger >= smaller

    @given(size=packet_sizes, rate=link_rates, frac=unit_fracs)
    @settings(max_examples=100, deadline=None)
    def test_degenerate_single_flow_weight_one(self, size, rate, frac):
        # theta(0) = 1 keeps the weight-1 (m=1 bit) single-flow corner
        # finite: one packet time plus zero extra-bit terms.
        assert theta(0) == 1.0
        bound = srr_delay_bound(1, 1, size, rate, rate * frac)
        assert math.isfinite(bound)
        assert bound > 0

    @given(w=weights, n=flow_counts, size=packet_sizes, rate=link_rates)
    @settings(max_examples=50, deadline=None)
    def test_nonpositive_weight_unit_rejected(self, w, n, size, rate):
        for bad in (0.0, -1.0, -rate):
            with pytest.raises(ConfigurationError,
                               match="weight_unit_bps must be positive"):
                srr_delay_bound(w, n, size, rate, bad)


class TestDRRProperties:
    @given(w=st.floats(min_value=0.01, max_value=64, allow_nan=False),
           extra=st.floats(min_value=0.0, max_value=512, allow_nan=False),
           quantum=st.integers(min_value=1, max_value=9000),
           size=packet_sizes, rate=link_rates)
    @settings(max_examples=200, deadline=None)
    def test_positive_and_monotone_in_frame(self, w, extra, quantum,
                                            size, rate):
        total = w + extra
        bound = drr_delay_bound(w, total, quantum, size, rate)
        assert math.isfinite(bound)
        assert bound > 0
        # Growing the frame (more competitors) can only hurt.
        wider = drr_delay_bound(w, total + 1.0, quantum, size, rate)
        assert wider >= bound


class TestG3Properties:
    @given(cap_bits=st.integers(min_value=0, max_value=20),
           size=packet_sizes, rate=link_rates, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_positive_finite_any_weight(self, cap_bits, size, rate, data):
        capacity = 1 << cap_bits
        w = data.draw(st.integers(min_value=1, max_value=capacity))
        bound = g3_delay_bound(w, capacity, size, rate)
        assert math.isfinite(bound)
        assert bound > 0


class TestComposition:
    @given(sigma=st.floats(min_value=0, max_value=1e6, allow_nan=False),
           rate=st.floats(min_value=1e3, max_value=1e9, allow_nan=False),
           hops=st.lists(
               st.floats(min_value=0, max_value=10, allow_nan=False),
               min_size=0, max_size=8,
           ))
    @settings(max_examples=200, deadline=None)
    def test_end_to_end_superadditive_in_hops(self, sigma, rate, hops):
        total = end_to_end_bound(sigma, rate, hops)
        assert math.isfinite(total)
        assert total >= sum(hops)
        # Adding a hop adds at least that hop's bound.
        longer = end_to_end_bound(sigma, rate, hops + [1.0])
        assert longer >= total + 1.0 - 1e-9 * max(1.0, total)

    @given(sigma=st.floats(min_value=0, max_value=1e6, allow_nan=False),
           rate=st.floats(min_value=1e3, max_value=1e9, allow_nan=False),
           size=packet_sizes, link=link_rates)
    @settings(max_examples=100, deadline=None)
    def test_wfq_dominates_pure_burst_term(self, sigma, rate, size, link):
        bound = wfq_delay_bound(sigma, rate, size, link)
        assert bound > sigma * 8.0 / rate
        assert math.isfinite(bound)
