"""Tests for the repro.harness run machinery."""
