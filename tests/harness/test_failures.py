"""Crash tolerance of the sweep engine: timeouts, retries, FailedRun
records, checkpoint/resume, and atomic artifact IO."""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import ConfigurationError
from repro.core.errors import ArtifactError
from repro.harness import (
    FailedRun,
    SweepPointError,
    atomic_write_json,
    atomic_write_text,
    load_json_checked,
    sweep,
    task_hash,
)
from repro.harness.sweep import child_seed


# Module-level workers so the process engine can address them.

def double(x):
    return x * 2


def boom(x):
    if x == 13:
        raise ValueError(f"bad point {x}")
    return x * 2


def hang_or_boom(x):
    if x == 1:
        raise ValueError("raising point")
    if x == 2:
        time.sleep(60)  # hung point, reaped by the timeout
    return x * 2


def always_fails(x):
    raise RuntimeError(f"attempt on {x}")


def unpicklable_result(x):
    return lambda: x  # fine inline, never checkpointable


def touch_and_maybe_fail(x, workdir):
    """Leaves one marker file per invocation; fails while the flag exists."""
    marker = Path(workdir) / f"ran-{x}-{os.getpid()}-{time.monotonic_ns()}"
    marker.write_text("x")
    if x == 1 and (Path(workdir) / "flag").exists():
        raise ValueError("failing while flagged")
    return x * 2


def invocations(workdir):
    return len(list(Path(workdir).glob("ran-*")))


class TestFailureReporting:
    def test_fast_path_wraps_with_context(self):
        tasks = [(7,), (13,), (21,)]
        with pytest.raises(SweepPointError) as info:
            sweep(boom, tasks, seed=5)
        err = info.value
        assert err.index == 1
        assert err.config_hash == task_hash(boom, (13,))
        assert err.child_seed is not None
        assert "bad point 13" in str(err)
        assert "(13,)" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_collect_returns_failed_run_in_place(self):
        results = sweep(boom, [(7,), (13,), (21,)], failures="collect")
        assert results[0] == 14 and results[2] == 42
        failure = results[1]
        assert isinstance(failure, FailedRun)
        assert failure.index == 1
        assert failure.error_type == "ValueError"
        assert not failure.timed_out
        assert failure.config_hash == task_hash(boom, (13,))

    def test_retries_record_every_attempt_seed(self):
        results = sweep(
            always_fails, [(0,)], retries=2, failures="collect", seed=9
        )
        failure = results[0]
        assert failure.attempts == 3
        point_seed = child_seed(9, 0)
        assert failure.child_seeds == [
            child_seed(point_seed, a) for a in range(3)
        ]
        assert len(set(failure.child_seeds)) == 3
        assert len(failure.history) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep(double, [(1,)], failures="explode")
        with pytest.raises(ConfigurationError):
            sweep(double, [(1,)], retries=-1)
        with pytest.raises(ConfigurationError):
            sweep(double, [(1,)], timeout=0.0)
        with pytest.raises(ConfigurationError):
            sweep(double, [(1,)], jobs=-2)


class TestTimeoutEngine:
    def test_hung_and_raising_points_do_not_wedge_the_sweep(self):
        start = time.monotonic()
        results = sweep(
            hang_or_boom, [(0,), (1,), (2,), (3,)],
            jobs=2, timeout=1.0, retries=0, failures="collect",
        )
        assert time.monotonic() - start < 30
        assert results[0] == 0 and results[3] == 6
        raised, hung = results[1], results[2]
        assert isinstance(raised, FailedRun)
        assert raised.error_type == "ValueError" and not raised.timed_out
        assert isinstance(hung, FailedRun)
        assert hung.timed_out and hung.error_type == "TimeoutError"

    def test_timeout_retries_are_counted(self):
        results = sweep(
            hang_or_boom, [(2,)], timeout=0.5, retries=1, failures="collect",
        )
        failure = results[0]
        assert failure.timed_out
        assert failure.attempts == 2
        assert len(failure.child_seeds) == 2

    def test_raise_mode_still_raises_after_isolation(self):
        with pytest.raises(SweepPointError) as info:
            sweep(hang_or_boom, [(0,), (2,)], jobs=2, timeout=0.5)
        assert info.value.failure.timed_out


class TestCheckpointResume:
    def test_checkpoints_written_and_reused(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        work = tmp_path / "work"
        work.mkdir()
        tasks = [(i, str(work)) for i in range(3)]
        first = sweep(
            touch_and_maybe_fail, tasks, checkpoint_dir=str(ckpt),
            failures="collect",
        )
        assert first == [0, 2, 4]
        assert sorted(p.name for p in ckpt.iterdir()) == [
            "point-00000.json", "point-00001.json", "point-00002.json",
        ]
        assert invocations(work) == 3
        second = sweep(
            touch_and_maybe_fail, tasks, checkpoint_dir=str(ckpt),
            failures="collect",
        )
        assert second == first
        assert invocations(work) == 3  # nothing re-ran

    def test_resume_reruns_only_failed_points(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        work = tmp_path / "work"
        work.mkdir()
        (work / "flag").touch()
        tasks = [(i, str(work)) for i in range(3)]
        first = sweep(
            touch_and_maybe_fail, tasks, checkpoint_dir=str(ckpt),
            failures="collect",
        )
        assert isinstance(first[1], FailedRun)
        assert invocations(work) == 3
        failed_ckpt = json.loads((ckpt / "point-00001.json").read_text())
        assert failed_ckpt["status"] == "failed"
        assert failed_ckpt["failure"]["schema"] == FailedRun.SCHEMA
        # Fix the environment; resuming re-runs just the failed point.
        (work / "flag").unlink()
        second = sweep(
            touch_and_maybe_fail, tasks, checkpoint_dir=str(ckpt),
            failures="collect",
        )
        assert second == [0, 2, 4]
        assert invocations(work) == 4

    def test_corrupt_checkpoint_reruns_point(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        work = tmp_path / "work"
        work.mkdir()
        tasks = [(i, str(work)) for i in range(2)]
        sweep(touch_and_maybe_fail, tasks, checkpoint_dir=str(ckpt))
        (ckpt / "point-00000.json").write_text('{"schema": "repro.h')
        results = sweep(
            touch_and_maybe_fail, tasks, checkpoint_dir=str(ckpt)
        )
        assert results == [0, 2]
        assert invocations(work) == 3  # point 0 re-ran, point 1 skipped

    def test_changed_task_invalidates_checkpoint(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        work = tmp_path / "work"
        work.mkdir()
        sweep(
            touch_and_maybe_fail, [(5, str(work))], checkpoint_dir=str(ckpt)
        )
        results = sweep(
            touch_and_maybe_fail, [(6, str(work))], checkpoint_dir=str(ckpt)
        )
        assert results == [12]
        assert invocations(work) == 2

    def test_unserialisable_result_returned_but_not_checkpointed(
        self, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        results = sweep(
            unpicklable_result, [(1,)], checkpoint_dir=str(ckpt),
        )
        assert results[0]() == 1
        # The point is simply not resumable; no corrupt half-file remains.
        assert not (ckpt / "point-00000.json").exists()


class TestAtomicIO:
    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_atomic_write_failure_cleans_up(self, tmp_path):
        path = tmp_path / "out.json"
        with pytest.raises(TypeError):
            atomic_write_json(path, {"a": object()})
        assert list(tmp_path.iterdir()) == []

    def test_load_rejects_truncated_json(self, tmp_path):
        path = tmp_path / "trunc.json"
        atomic_write_text(path, '{"schema": "x", "results": {"a"')
        with pytest.raises(ArtifactError):
            load_json_checked(path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "other.json"
        atomic_write_json(path, {"schema": "somebody/else/v9"})
        with pytest.raises(ArtifactError):
            load_json_checked(path, schema="repro.harness/run-result/v1")

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_json_checked(tmp_path / "never-written.json")

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        atomic_write_text(path, "[1, 2, 3]\n")
        with pytest.raises(ArtifactError):
            load_json_checked(path)
