"""Seeded exponential retry backoff (repro.harness.sweep.backoff_delay)."""

import time

import pytest

from repro.core import ConfigurationError
from repro.harness import FailedRun, backoff_delay, sweep


def always_fails(x):
    raise ValueError(f"nope: {x}")


class TestDelayCurve:
    def test_deterministic(self):
        a = backoff_delay(7, 3, 1, base=0.5, cap=30.0)
        b = backoff_delay(7, 3, 1, base=0.5, cap=30.0)
        assert a == b

    def test_exponential_growth_with_jitter_band(self):
        """Attempt a's un-jittered delay is base * 2**a; the jitter keeps
        the actual wait in [0.5, 1.0] times that."""
        for attempt in range(5):
            raw = 0.5 * 2 ** attempt
            d = backoff_delay(1, 0, attempt, base=0.5, cap=1e9)
            assert raw * 0.5 <= d <= raw

    def test_cap_clamps(self):
        d = backoff_delay(1, 0, 20, base=1.0, cap=2.0)
        assert d <= 2.0

    def test_zero_base_means_no_wait(self):
        assert backoff_delay(1, 0, 3, base=0.0, cap=30.0) == 0.0

    def test_distinct_points_decorrelate(self):
        delays = {
            backoff_delay(9, i, 0, base=1.0, cap=30.0) for i in range(20)
        }
        assert len(delays) > 10  # the jitter actually spreads the herd


class TestSweepIntegration:
    def test_inline_records_backoff_per_attempt(self):
        t0 = time.monotonic()
        results = sweep(
            always_fails, [(1,)], retries=2, backoff=0.02,
            failures="collect", seed=7,
        )
        elapsed = time.monotonic() - t0
        (failure,) = results
        assert isinstance(failure, FailedRun)
        assert failure.attempts == 3
        waits = [h.get("backoff_s") for h in failure.history]
        # Two retries waited; the final attempt has nothing after it.
        assert waits[0] is not None and waits[1] is not None
        assert waits[2] is None
        assert waits[1] > waits[0] / 2  # exponential-ish growth
        assert elapsed >= waits[0] + waits[1]

    def test_isolated_records_backoff_per_attempt(self):
        results = sweep(
            always_fails, [(1,), (2,)], retries=1, backoff=0.02,
            timeout=10.0, failures="collect", seed=7, jobs=2,
        )
        for failure in results:
            assert isinstance(failure, FailedRun)
            waits = [h.get("backoff_s") for h in failure.history]
            assert waits[0] is not None and waits[0] > 0
            assert waits[1] is None

    def test_backoff_schedule_reproducible_across_paths(self):
        """The inline and process-isolated runners must draw identical
        per-attempt delays for the same (seed, index, attempt)."""
        inline = sweep(
            always_fails, [(1,)], retries=1, backoff=0.02,
            failures="collect", seed=11,
        )[0]
        isolated = sweep(
            always_fails, [(1,)], retries=1, backoff=0.02, timeout=10.0,
            failures="collect", seed=11,
        )[0]
        assert (
            inline.history[0]["backoff_s"]
            == isolated.history[0]["backoff_s"]
        )

    def test_zero_backoff_leaves_history_untouched(self):
        (failure,) = sweep(
            always_fails, [(1,)], retries=1, failures="collect", seed=7,
        )
        assert all("backoff_s" not in h for h in failure.history)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(always_fails, [(1,)], backoff=-1.0, failures="collect")
        with pytest.raises(ConfigurationError):
            sweep(always_fails, [(1,)], backoff_cap=0.0, failures="collect")
