"""Sweep determinism: child seeds, ordering, parallel == serial."""

import random

import pytest

from repro.core import ConfigurationError
from repro.harness import child_seed, spawn_seeds, sweep


def _square(x):
    return x * x


def _seeded_draw(seed):
    return random.Random(seed).random()


class TestChildSeed:
    def test_deterministic(self):
        assert child_seed(1, 0) == child_seed(1, 0)
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_distinct_across_points_and_roots(self):
        seeds = spawn_seeds(1, 100) + spawn_seeds(2, 100)
        assert len(set(seeds)) == 200

    def test_independent_of_call_order(self):
        forward = [child_seed(3, i) for i in range(10)]
        backward = [child_seed(3, i) for i in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_nonnegative_63_bit(self):
        for i in range(50):
            s = child_seed(12345, i)
            assert 0 <= s < (1 << 63)


class TestSweep:
    def test_serial_runs_in_task_order(self):
        assert sweep(_square, [(i,) for i in range(6)]) == [
            0, 1, 4, 9, 16, 25
        ]

    def test_empty(self):
        assert sweep(_square, []) == []

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(_square, [(1,)], jobs=-2)

    def test_parallel_equals_serial(self):
        tasks = [(i,) for i in range(20)]
        assert sweep(_square, tasks, jobs=4) == sweep(_square, tasks, jobs=1)

    def test_parallel_preserves_order_not_completion(self):
        # Squares of a descending range: any completion-order keying
        # would likely reorder these.
        tasks = [(i,) for i in range(30, 0, -1)]
        assert sweep(_square, tasks, jobs=3) == [i * i for i in range(30, 0, -1)]

    def test_parallel_rng_matches_serial(self):
        tasks = [(child_seed(9, i),) for i in range(8)]
        serial = sweep(_seeded_draw, tasks, jobs=1)
        parallel = sweep(_seeded_draw, tasks, jobs=2)
        assert serial == parallel


class TestExperimentParallelism:
    """End to end: a harness experiment is --jobs invariant."""

    def test_e1_stable_json_identical_across_jobs(self):
        from repro.bench.runner import run_config

        serial = run_config("e1", seed=3, overrides={"max_order": 6})
        parallel = run_config(
            "e1", seed=3, jobs=2, overrides={"max_order": 6}
        )
        assert serial.stable_json_dict() == parallel.stable_json_dict()

    def test_e5_stable_json_identical_across_jobs(self):
        from repro.bench.runner import run_config

        overrides = {
            "schedulers": ("srr", "wfq"),
            "n_values": (8, 16),
            "measure": 200,
        }
        serial = run_config("e5", seed=7, overrides=overrides)
        parallel = run_config("e5", seed=7, jobs=2, overrides=overrides)
        assert serial.stable_json_dict() == parallel.stable_json_dict()

    def test_e5_obs_metrics_identical_across_jobs(self):
        # The observability block is deliberately part of the stable
        # form; assert the registry itself, not just the containing dict,
        # so a regression points straight at the merge.
        from repro.bench.runner import run_config

        overrides = {
            "schedulers": ("srr", "wfq"),
            "n_values": (8, 16),
            "measure": 200,
        }
        serial = run_config("e5", seed=7, overrides=overrides)
        parallel = run_config("e5", seed=7, jobs=2, overrides=overrides)
        assert "obs" in serial.stable_json_dict()
        assert serial.obs["metrics"], "e5 must populate the registry"
        assert serial.obs == parallel.obs
        key = "dequeue_ops{n=8,scheduler=srr}"
        assert serial.obs["metrics"][key]["count"] == 32  # 8 flows x 4 pkts

    def test_e9_timing_fields_excluded_from_stable_form(self):
        # E9 measures wall-clock time as its data; the declared timing
        # fields are volatile, everything else must still be identical.
        from repro.bench.runner import run_config

        serial = run_config("e9", seed=7, overrides={"lookups": 500})
        parallel = run_config(
            "e9", seed=7, jobs=2, overrides={"lookups": 500}
        )
        assert serial.timing_fields == ["ns", "us", "us_raw"]
        stable = serial.stable_json_dict()
        assert all("ns" not in p for p in stable["points"])
        assert stable == parallel.stable_json_dict()
