"""Typed configs, RunResult JSON round-trips, and result artifacts."""

import json

import pytest

from repro.bench.experiments import SPECS
from repro.bench.runner import run_config
from repro.core import ConfigurationError
from repro.harness import (
    ExperimentConfig,
    RunResult,
    artifact_path,
    build_config,
    load_artifact,
    resolve_params,
    write_artifact,
)


class TestResolveParams:
    def test_defaults_are_the_default_scale(self):
        params = resolve_params(SPECS["e1"])
        assert params == {"max_order": 10}

    def test_scale_preset_applies(self):
        assert resolve_params(SPECS["e1"], "quick") == {"max_order": 8}

    def test_overrides_win_over_scale(self):
        params = resolve_params(SPECS["e1"], "quick", {"max_order": 3})
        assert params == {"max_order": 3}

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_params(SPECS["e1"], overrides={"bogus": 1})

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_params(SPECS["e1"], "huge")

    def test_every_spec_resolves_at_every_scale(self):
        for spec in SPECS.values():
            for scale in ("quick", "default", "full"):
                params = resolve_params(spec, scale)
                # The resolved dict must instantiate the params type.
                spec.params_type(**params)


class TestConfigRoundTrip:
    def test_json_round_trip(self):
        config = build_config(
            SPECS["e5"], seed=9, scale="quick", jobs=4,
            overrides={"measure": 100},
        )
        data = json.loads(json.dumps(config.to_json_dict()))
        back = ExperimentConfig.from_json_dict(data)
        assert back.experiment == "e5"
        assert back.seed == 9
        assert back.scale == "quick"
        assert back.jobs == 4
        assert back.params["measure"] == 100


class TestRunResult:
    @pytest.fixture(scope="class")
    def result(self):
        return run_config("e1", seed=5, overrides={"max_order": 5})

    def test_fields_populated(self, result):
        assert result.experiment == "e1"
        assert result.config.seed == 5
        assert result.metrics["all_counts_ok"] is True
        assert len(result.points) == 5
        assert len(result.tables) == 1
        assert result.wall_time_s > 0
        assert result.started_at
        assert result.environment.get("python")

    def test_json_round_trip(self, result):
        data = json.loads(json.dumps(result.to_json_dict()))
        assert data["schema"] == "repro.harness/run-result/v1"
        back = RunResult.from_json_dict(data)
        assert back.to_json_dict() == data

    def test_stable_form_drops_volatile_fields(self, result):
        stable = result.stable_json_dict()
        for key in ("started_at", "wall_time_s", "environment", "engine"):
            assert key not in stable
        assert "jobs" not in stable["config"]

    def test_stable_form_drops_per_point_engine_records(self):
        # sim_wall_time_s inside a point's engine stats is wall-clock
        # volatile; the stable form must not depend on it.
        result = run_config(
            "e3",
            overrides={
                "schedulers": ("srr",), "duration": 0.5,
                "n_background": 10,
            },
        )
        assert any("engine" in p for p in result.points)
        stable = result.stable_json_dict()
        assert all("engine" not in p for p in stable["points"])

    def test_obs_block_round_trips_and_stays_stable(self):
        result = run_config(
            "e5", seed=2,
            overrides={"schedulers": ("srr",), "n_values": (8,),
                       "measure": 32, "time_it": False},
        )
        metrics = result.obs["metrics"]
        key = "dequeue_ops{n=8,scheduler=srr}"
        assert metrics[key]["type"] == "histogram"
        assert metrics[key]["count"] == 32
        data = json.loads(json.dumps(result.to_json_dict()))
        assert data["obs"]["metrics"] == metrics
        back = RunResult.from_json_dict(data)
        assert back.obs == result.obs
        # Not volatile: two runs must agree byte for byte on the block.
        assert "obs" in result.stable_json_dict()

    def test_engine_totals_from_network_experiments(self):
        result = run_config(
            "e3",
            overrides={
                "schedulers": ("srr",), "duration": 0.5,
                "n_background": 10,
            },
        )
        assert result.engine["events_processed"] > 0
        assert result.engine["max_heap_depth"] > 0


class TestArtifacts:
    def test_write_and_load(self, tmp_path):
        result = run_config("e1", seed=11, overrides={"max_order": 4})
        path = write_artifact(result, results_dir=tmp_path)
        assert path.parent == tmp_path / "e1"
        assert path.name.endswith("-11.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.harness/run-result/v1"
        summary = payload["summary"]
        assert summary["benchmarks"][0]["name"] == "e1"
        assert summary["benchmarks"][0]["stats"]["rounds"] == 1
        back = load_artifact(path)
        assert back.stable_json_dict() == result.stable_json_dict()

    def test_artifact_path_shape(self):
        result = run_config("e1", overrides={"max_order": 2})
        path = artifact_path(result, results_dir="results")
        assert path.parts[0] == "results"
        assert path.parts[1] == "e1"
