"""CLI smoke tests for the harness flags: --json/--jobs/--seed/--set."""

import json

import pytest

from repro.bench.runner import main
from repro.core import ConfigurationError

# A tiny, fast e5 configuration shared by the CLI tests.
E5_TINY = [
    "--set", "schedulers=('srr','drr')",
    "--set", "n_values=(8,)",
    "--set", "measure=50",
]


def _run_json(capsys, argv):
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


class TestJsonOutput:
    def test_json_is_parseable_and_complete(self, capsys):
        data = _run_json(
            capsys, ["e5", "--json", "--no-artifact", *E5_TINY]
        )
        assert data["experiment"] == "e5"
        assert data["config"]["params"]["measure"] == 50
        assert data["metrics"]["srr"]["8"] > 0
        assert len(data["points"]) == 2

    def test_json_suppresses_tables(self, capsys):
        main(["e5", "--json", "--no-artifact", *E5_TINY])
        out = capsys.readouterr().out
        # Pure JSON on stdout: parse must succeed from char 0.
        json.loads(out)


class TestSeed:
    def test_seed_recorded_in_config(self, capsys):
        data = _run_json(
            capsys, ["e5", "--seed", "42", "--json", "--no-artifact",
                     *E5_TINY]
        )
        assert data["config"]["seed"] == 42

    def test_seed_flows_into_stochastic_points(self, capsys):
        argv = ["e3", "--json", "--no-artifact",
                "--set", "schedulers=('srr',)",
                "--set", "duration=0.5", "--set", "n_background=10"]
        a = _run_json(capsys, [*argv, "--seed", "1"])
        b = _run_json(capsys, [*argv, "--seed", "2"])
        assert a["points"][0]["seed"] == 1
        assert b["points"][0]["seed"] == 2


class TestJobs:
    def test_jobs_do_not_change_results(self, capsys):
        argv = ["e5", "--json", "--no-artifact", "--seed", "7", *E5_TINY]
        serial = _run_json(capsys, [*argv, "--jobs", "1"])
        parallel = _run_json(capsys, [*argv, "--jobs", "2"])
        volatile = ("started_at", "wall_time_s", "environment", "engine")
        for data in (serial, parallel):
            for key in volatile:
                data.pop(key, None)
            data["config"].pop("jobs", None)
        assert serial == parallel


class TestArtifacts:
    def test_artifact_written_under_results_dir(self, capsys, tmp_path):
        assert main(
            ["e1", "--quiet", "--set", "max_order=3",
             "--results-dir", str(tmp_path)]
        ) == 0
        files = list((tmp_path / "e1").glob("*-1.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["experiment"] == "e1"
        assert payload["summary"]["benchmarks"][0]["name"] == "e1"

    def test_no_artifact_writes_nothing(self, capsys, tmp_path):
        assert main(
            ["e1", "--quiet", "--no-artifact", "--set", "max_order=3",
             "--results-dir", str(tmp_path)]
        ) == 0
        assert not list(tmp_path.rglob("*.json"))


class TestScaleAndOverrides:
    def test_quick_is_scale_quick(self, capsys):
        data = _run_json(
            capsys, ["e1", "--quick", "--json", "--no-artifact"]
        )
        assert data["config"]["scale"] == "quick"
        assert data["config"]["params"]["max_order"] == 8

    def test_bad_set_syntax_rejected(self):
        with pytest.raises(ConfigurationError):
            main(["e1", "--no-artifact", "--set", "max_order"])

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            main(["e1", "--no-artifact", "--set", "bogus=1"])

    def test_string_override_falls_back_to_str(self, capsys):
        data = _run_json(
            capsys,
            ["e5", "--json", "--no-artifact",
             "--set", "schedulers=('srr',)", "--set", "n_values=(8,)",
             "--set", "measure=50"],
        )
        assert data["config"]["params"]["schedulers"] == ["srr"]
