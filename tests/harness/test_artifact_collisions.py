"""Artifact filename collisions: same timestamp + seed must not clobber.

``results/<exp>/<timestamp>-<seed>.json`` collides when two runs of the
same seed land in one timestamp granule (back-to-back CI retries, fast
sweeps). ``write_artifact`` now claims the name with ``O_EXCL`` and walks
an attempt counter, so every run keeps its own artifact.
"""

from repro.bench.runner import run_config
from repro.harness import artifact_path, load_artifact, write_artifact


def _result():
    result = run_config("e1", seed=9, overrides={"max_order": 3})
    # Pin the timestamp so both writes target the same base name, the
    # worst case the attempt counter exists for.
    result.started_at = "2026-01-02T03:04:05.678901+00:00"
    return result


class TestCollisionSuffix:
    def test_back_to_back_runs_yield_two_files(self, tmp_path):
        first = write_artifact(_result(), results_dir=tmp_path)
        second = write_artifact(_result(), results_dir=tmp_path)
        assert first != second
        assert first.exists() and second.exists()
        assert load_artifact(first).config.seed == 9
        assert load_artifact(second).config.seed == 9

    def test_attempt_counter_walks_past_many_collisions(self, tmp_path):
        paths = [write_artifact(_result(), results_dir=tmp_path)
                 for _ in range(4)]
        assert len(set(paths)) == 4
        base = paths[0].name
        assert base.endswith("-9.json")
        assert [p.name for p in paths[1:]] == [
            base.replace("-9.json", f"-9-{i}.json") for i in (1, 2, 3)]

    def test_artifact_path_attempt_suffix(self):
        result = _result()
        p0 = artifact_path(result, "results")
        p1 = artifact_path(result, "results", attempt=1)
        assert p1.name == p0.name.replace(".json", "-1.json")
        assert p0.parent == p1.parent

    def test_distinct_timestamps_keep_plain_names(self, tmp_path):
        a = _result()
        b = _result()
        b.started_at = "2026-01-02T03:04:06.000000+00:00"
        pa = write_artifact(a, results_dir=tmp_path)
        pb = write_artifact(b, results_dir=tmp_path)
        assert pa != pb
        assert not pa.name.endswith("-9-1.json")
        assert not pb.name.endswith("-9-1.json")
