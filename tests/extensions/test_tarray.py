"""Tests for the Time-Slot Array (the spread PWBT of G-3)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.extensions.pwbt import PWBTAllocator
from repro.extensions.tarray import TimeSlotArray
from repro.extensions.tss import tss_sequence


class TestFullyExpanded:
    def test_paper_fig3_tarray(self):
        """Fig. 3 / Section III-B: the depth-4 PWBT with f1@v(4,0),
        f2@v(3,1), f3@v(2,1), f4@v(2,2) spreads to
        f1 f4 f3 . f2 f4 f3 . . f4 f3 . f2 f4 f3 .   (. = idle/f0)."""
        ta = TimeSlotArray(4)
        ta.write_block(0, 0, "f1")
        ta.write_block(2, 1, "f2")
        ta.write_block(4, 2, "f3")
        ta.write_block(8, 2, "f4")
        expected = [
            "f1", "f4", "f3", None, "f2", "f4", "f3", None,
            None, "f4", "f3", None, "f2", "f4", "f3", None,
        ]
        assert ta.service_order() == expected

    def test_write_block_returns_entry_count(self):
        ta = TimeSlotArray(4)
        assert ta.write_block(4, 2, "x") == 4
        assert ta.write_block(0, 0, "y") == 1

    def test_overwrite_with_none_frees(self):
        ta = TimeSlotArray(3)
        ta.write_block(0, 3, "a")
        ta.write_block(0, 3, None)
        assert ta.service_order() == [None] * 8

    def test_owner_positions_follow_bit_reversal(self):
        ta = TimeSlotArray(3)
        ta.write_block(2, 1, "x")  # node v(2,1): leaves 2,3
        seq = tss_sequence(3)
        for p in range(8):
            expected = "x" if seq[p] in (2, 3) else None
            assert ta.owner(p) == expected

    def test_validation(self):
        ta = TimeSlotArray(3)
        with pytest.raises(ConfigurationError):
            ta.owner(8)
        with pytest.raises(ConfigurationError):
            ta.write_block(1, 1, "a")  # misaligned
        with pytest.raises(ConfigurationError):
            ta.write_block(0, 4, "a")  # exponent too large
        with pytest.raises(ConfigurationError):
            TimeSlotArray(-1)
        with pytest.raises(ConfigurationError):
            TimeSlotArray(4, expanded_levels=5)


class TestPartialExpansion:
    """The Section IV-B space-time tradeoff: expand only the top levels."""

    def build(self, expanded):
        alloc = PWBTAllocator(4)
        ta = TimeSlotArray(4, expanded_levels=expanded)
        ta.set_owner_lookup(alloc.owner_at)
        layout = [("f1", 0), ("f2", 1), ("f3", 2), ("f4", 2)]
        for owner, e in layout:
            off = alloc.allocate(e, owner)
            ta.write_block(off, e, owner)
        return alloc, ta

    @pytest.mark.parametrize("expanded", [0, 1, 2, 3, 4])
    def test_same_service_order_any_expansion(self, expanded):
        _alloc, full = self.build(4)
        _alloc2, partial = self.build(expanded)
        assert partial.service_order() == full.service_order()

    def test_storage_shrinks(self):
        _a, ta = self.build(2)
        assert ta.storage_entries == 4
        _a, full = self.build(4)
        assert full.storage_entries == 16

    def test_deep_blocks_resolved_by_lookup(self):
        alloc = PWBTAllocator(4)
        ta = TimeSlotArray(4, expanded_levels=1)
        ta.set_owner_lookup(alloc.owner_at)
        off = alloc.allocate(0, "deep")  # a single leaf, level 4 > 1
        written = ta.write_block(off, 0, "deep")
        assert written == 0  # nothing stored; resolved via the walk
        order = ta.service_order()
        assert order.count("deep") == 1
