"""Tests for the PWBT buddy allocator (split/merge/List_l/shaping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AdmissionError, ConfigurationError
from repro.extensions.pwbt import PWBTAllocator


class TestAllocation:
    def test_fresh_tree_one_free_root(self):
        t = PWBTAllocator(4)
        assert t.free_slots == 16
        assert t.free_blocks(4) == [0]
        assert t.largest_free_exponent() == 4

    def test_paper_fig1_allocation_layout(self):
        """Fig. 1: f1 (1/16), f2 (1/8), f3, f4 (1/4 each) on a depth-4
        tree land at v(4,0), v(3,1), v(2,1), v(2,2)."""
        t = PWBTAllocator(4)
        assert t.allocate(0, "f1") == 0   # v(4,0): offset 0
        assert t.allocate(1, "f2") == 2   # v(3,1): offset 2
        assert t.allocate(2, "f3") == 4   # v(2,1): offset 4
        assert t.allocate(2, "f4") == 8   # v(2,2): offset 8
        # Free remainder: v(4,1) and v(2,3).
        assert t.free_blocks(0) == [1]
        assert t.free_blocks(2) == [12]
        assert t.free_slots == 5
        t.check_invariants()

    def test_split_produces_buddies(self):
        t = PWBTAllocator(3)
        t.allocate(0, "a")
        assert t.free_blocks(0) == [1]
        assert t.free_blocks(1) == [2]
        assert t.free_blocks(2) == [4]

    def test_exact_fit_preferred(self):
        t = PWBTAllocator(3)
        t.allocate(1, "a")  # splits root
        t.allocate(1, "b")  # must take the existing free e=1 block
        assert t.free_blocks(1) == []
        assert t.free_blocks(2) == [4]

    def test_full_tree_rejects(self):
        t = PWBTAllocator(2)
        t.allocate(2, "a")
        with pytest.raises(AdmissionError):
            t.allocate(0, "b")

    def test_fragmentation_rejects_despite_capacity(self):
        """The G-3 bandwidth-fragmentation problem: free slots exist but
        no contiguous block of the needed size."""
        t = PWBTAllocator(2)
        blocks = [t.allocate(0, f"f{i}") for i in range(4)]
        t.free(blocks[0], 0)
        t.free(blocks[2], 0)
        assert t.free_slots == 2
        with pytest.raises(AdmissionError):
            t.allocate(1, "big")

    def test_owner_at(self):
        t = PWBTAllocator(3)
        t.allocate(1, "a")  # offset 0, slots 0-1
        t.allocate(0, "b")  # offset 2
        assert t.owner_at(0) == "a"
        assert t.owner_at(1) == "a"
        assert t.owner_at(2) == "b"
        assert t.owner_at(3) is None
        with pytest.raises(ConfigurationError):
            t.owner_at(8)

    def test_allocation_listing(self):
        t = PWBTAllocator(3)
        t.allocate(1, "a")
        t.allocate(0, "b")
        assert t.allocations() == [(0, 1, "a"), (2, 0, "b")]
        assert t.allocations_within(0, 2) == [(0, 1, "a"), (2, 0, "b")]
        assert t.allocations_within(4, 2) == []

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PWBTAllocator(-1)
        with pytest.raises(ConfigurationError):
            PWBTAllocator(31)
        t = PWBTAllocator(3)
        with pytest.raises(ConfigurationError):
            t.allocate(4, "a")


class TestFreeAndMerge:
    def test_free_coalesces_buddies(self):
        t = PWBTAllocator(3)
        a = t.allocate(0, "a")
        b = t.allocate(0, "b")
        t.free(a, 0)
        t.free(b, 0)
        # Everything merged back to the root block.
        assert t.free_blocks(3) == [0]
        t.check_invariants()

    def test_free_without_buddy_stays(self):
        t = PWBTAllocator(3)
        a = t.allocate(0, "a")
        t.allocate(0, "b")
        t.free(a, 0)
        assert t.free_blocks(0) == [0]
        t.check_invariants()

    def test_double_free_raises(self):
        t = PWBTAllocator(3)
        a = t.allocate(0, "a")
        t.free(a, 0)
        with pytest.raises(ConfigurationError):
            t.free(a, 0)

    def test_free_wrong_exponent_raises(self):
        t = PWBTAllocator(3)
        a = t.allocate(1, "a")
        with pytest.raises(ConfigurationError):
            t.free(a, 0)
        t.check_invariants()
        assert t.owner_at(a) == "a"  # allocation untouched

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_random_alloc_free_invariants(self, data):
        t = PWBTAllocator(6)
        live = []
        for step in range(data.draw(st.integers(0, 60))):
            if live and data.draw(st.booleans()):
                off, e = live.pop(data.draw(st.integers(0, len(live) - 1)))
                t.free(off, e)
            else:
                e = data.draw(st.integers(0, 4))
                try:
                    off = t.allocate(e, f"f{step}")
                except AdmissionError:
                    continue
                live.append((off, e))
            t.check_invariants()
        total = sum(1 << e for _off, e in live)
        assert t.allocated_slots == total


class TestRelocate:
    def test_relocate_whole_block(self):
        """The paper's Fig. 6 swapping: move an allocated sibling onto a
        distant free block so the local buddies can merge."""
        t = PWBTAllocator(2)
        blocks = [t.allocate(0, f"f{i}") for i in range(4)]  # slots 0-3
        # Free f0 and f2 -> two free e=0 blocks (0 and 2): fragmentation.
        t.free(blocks[0], 0)
        t.free(blocks[2], 0)
        with pytest.raises(AdmissionError):
            t.allocate(1, "big")
        # Move f1 (slot 1, buddy of free slot 0) onto free slot 2.
        moves = t.relocate((1, 0), (2, 0))
        assert moves == [(2, 0, "f1")]
        t.check_invariants()
        # Buddies 0+1 merged: an e=1 allocation now fits.
        t.allocate(1, "big")
        t.check_invariants()

    def test_relocate_subdivided_block(self):
        t = PWBTAllocator(4)
        t.allocate(2, "whole")          # offset 0 (slots 0-3)
        a = t.allocate(0, "a")          # offset 4
        assert a == 4
        b = t.allocate(0, "b")          # offset 5
        assert b == 5
        t.allocate(2, "other")          # offset 8
        t.free(5, 0)                    # sub-free inside block (4, e=2)
        # Block (4, e=2) is subdivided: a at 4, free 5, free (6, e=1).
        moves = t.relocate((4, 2), (12, 2))
        assert (12, 0, "a") in moves
        t.check_invariants()
        assert t.owner_at(12) == "a"
        assert t.owner_at(4) is None
        # Source region coalesced back into a free e=2 block.
        assert 4 in t.free_blocks(2)

    def test_relocate_validation(self):
        t = PWBTAllocator(3)
        t.allocate(1, "a")
        with pytest.raises(ConfigurationError):
            t.relocate((0, 1), (4, 2))  # size mismatch
        with pytest.raises(ConfigurationError):
            t.relocate((0, 1), (0, 1))  # destination not free
