"""Tests for the RRR scheduler (extension baseline)."""

import pytest

from repro.core import (
    AdmissionError,
    ConfigurationError,
    InvalidWeightError,
    OpCounter,
    Packet,
)
from repro.extensions import RRRScheduler


def drain_ids(sched, limit=10000):
    out = []
    for _ in range(limit):
        p = sched.dequeue()
        if p is None:
            break
        out.append(p.flow_id)
    return out


def load(sched, flows, n, size=100):
    for fid in flows:
        for i in range(n):
            sched.enqueue(Packet(fid, size, seq=i))


class TestPaperFigure1:
    def make(self):
        s = RRRScheduler(capacity=16)
        s.add_flow("f1", 1)   # 1/16
        s.add_flow("f2", 2)   # 1/8
        s.add_flow("f3", 4)   # 1/4
        s.add_flow("f4", 4)   # 1/4
        s.add_flow("f0", 0)   # best-effort consumes idle slots
        return s

    def test_slot_sequence_matches_fig1(self):
        s = self.make()
        slots = s.slot_sequence(16)
        expected = [
            "f1", "f4", "f3", None, "f2", "f4", "f3", None,
            None, "f4", "f3", None, "f2", "f4", "f3", None,
        ]
        assert slots == expected

    def test_service_with_best_effort_fill(self):
        s = self.make()
        load(s, ["f1", "f2", "f3", "f4", "f0"], 10)
        seq = drain_ids(s, limit=16)
        expected = [
            "f1", "f4", "f3", "f0", "f2", "f4", "f3", "f0",
            "f0", "f4", "f3", "f0", "f2", "f4", "f3", "f0",
        ]
        assert seq == expected

    def test_round_repeats(self):
        s = self.make()
        load(s, ["f1", "f2", "f3", "f4", "f0"], 20)
        seq = drain_ids(s, limit=32)
        assert seq[:16] == seq[16:]


class TestBehaviour:
    def test_weight_share_per_round(self):
        s = RRRScheduler(capacity=8)
        s.add_flow("a", 4)
        s.add_flow("b", 2)
        s.add_flow("c", 1)
        load(s, "abc", 40)
        seq = drain_ids(s, limit=28)  # 4 rounds of 7 busy slots
        assert seq.count("a") == 16
        assert seq.count("b") == 8
        assert seq.count("c") == 4

    def test_perfectly_periodic_single_bit_flow(self):
        """A weight-2^e flow's slots recur every capacity/2^e slots (the
        good delay property of RRR)."""
        s = RRRScheduler(capacity=16)
        s.add_flow("x", 4)
        s.add_flow("pad", 12)
        load(s, ["x", "pad"], 50)
        seq = drain_ids(s, limit=48)
        positions = [i for i, f in enumerate(seq) if f == "x"]
        gaps = {b - a for a, b in zip(positions, positions[1:])}
        assert gaps == {4}

    def test_work_conserving_skips_idle_slots(self):
        s = RRRScheduler(capacity=16)
        s.add_flow("only", 1)
        load(s, ["only"], 5)
        assert drain_ids(s) == ["only"] * 5

    def test_admission_control(self):
        s = RRRScheduler(capacity=4)
        s.add_flow("a", 3)
        with pytest.raises(AdmissionError):
            s.add_flow("b", 2)
        assert not s.has_flow("b")
        s.add_flow("c", 1)  # exact remainder fits

    def test_weight_larger_than_capacity(self):
        s = RRRScheduler(capacity=4)
        with pytest.raises(AdmissionError):
            s.add_flow("a", 5)

    def test_remove_flow_releases_slots(self):
        s = RRRScheduler(capacity=4)
        s.add_flow("a", 4)
        s.remove_flow("a")
        s.add_flow("b", 4)
        assert s.reserved_slots == 4

    def test_non_integer_weight_rejected(self):
        s = RRRScheduler(capacity=4)
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", 1.5)
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", -1)

    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            RRRScheduler(capacity=10)
        with pytest.raises(ConfigurationError):
            RRRScheduler(capacity=0)

    def test_best_effort_round_robins(self):
        s = RRRScheduler(capacity=4)
        s.add_flow("be1", 0)
        s.add_flow("be2", 0)
        load(s, ["be1", "be2"], 6)
        seq = drain_ids(s)
        # All slots idle -> BE flows alternate.
        assert seq.count("be1") == 6 and seq.count("be2") == 6
        longest = cur = 1
        for x, y in zip(seq, seq[1:]):
            cur = cur + 1 if x == y else 1
            longest = max(longest, cur)
        assert longest <= 2

    def test_walk_cost_grows_with_depth(self):
        """RRR's per-slot cost is O(log capacity) — the problem G-3
        solves. Measured in ops per packet."""

        def cost(capacity):
            ops = OpCounter()
            s = RRRScheduler(capacity=capacity, op_counter=ops)
            # Saturate the round with unit-weight flows so every slot is a
            # full root-to-leaf walk (no idle scanning).
            for i in range(capacity):
                s.add_flow(i, 1)
                s.enqueue(Packet(i, 100))
            ops.reset()
            for _ in range(capacity):
                s.dequeue()
            return ops.count / capacity

        assert cost(2**10) > cost(2**4) * 1.5
