"""Differential test: G-3 slot order is invariant under TArray expansion.

The Section IV-B space-time tradeoff must be *behaviour-preserving*: a
G-3 scheduler whose Time-Slot Arrays are only partially expanded (deep
levels resolved by walking the allocator) must produce exactly the same
slot sequence as the fully expanded one, under arbitrary admission/
departure churn. This pins the partial-expansion lookup logic against
the straightforward full-array implementation.
"""

import random

import pytest

from repro.core import AdmissionError
from repro.extensions import G3Scheduler


@pytest.mark.parametrize("seed", [3, 5, 9])
@pytest.mark.parametrize("expanded", [0, 2, 4])
def test_slot_sequence_invariant_under_expansion(seed, expanded):
    rng = random.Random(seed)
    full = G3Scheduler(capacity=63, auto_shape=False)
    partial = G3Scheduler(
        capacity=63, expanded_levels=expanded, auto_shape=False
    )
    live = []
    for step in range(120):
        if live and rng.random() < 0.35:
            fid = live.pop(rng.randrange(len(live)))
            full.remove_flow(fid)
            partial.remove_flow(fid)
        else:
            fid = f"f{step}"
            weight = rng.randint(1, 12)
            try:
                full.add_flow(fid, weight)
            except AdmissionError:
                continue
            partial.add_flow(fid, weight)  # must agree on admission
            live.append(fid)
        if step % 20 == 0:
            assert full.slot_sequence(63) == partial.slot_sequence(63)
    full.check_invariants()
    partial.check_invariants()
    assert full.slot_sequence(126) == partial.slot_sequence(126)


def test_admission_decisions_identical(seed=17):
    """Expansion must not change WHAT is admissible, only lookup cost."""
    rng = random.Random(seed)
    a = G3Scheduler(capacity=31, auto_shape=True)
    b = G3Scheduler(capacity=31, expanded_levels=1, auto_shape=True)
    for step in range(60):
        weight = rng.randint(1, 10)
        outcome_a = outcome_b = True
        try:
            a.add_flow(step, weight)
        except AdmissionError:
            outcome_a = False
        try:
            b.add_flow(step, weight)
        except AdmissionError:
            outcome_b = False
        assert outcome_a == outcome_b
        if outcome_a and rng.random() < 0.4:
            a.remove_flow(step)
            b.remove_flow(step)
