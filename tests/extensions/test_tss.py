"""Tests for the Time-Slot Sequence / bit-reversal machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.extensions.tss import (
    first_slot_after,
    node_slot_positions,
    reverse_bits,
    tss_sequence,
    tss_sequence_recursive,
    tss_term,
)


class TestReverseBits:
    def test_paper_examples(self):
        # RB(011b, 3) = 110b = 6 and RB(0001b, 4) = 1000b = 8.
        assert reverse_bits(0b011, 3) == 6
        assert reverse_bits(0b0001, 4) == 8

    def test_zero_width(self):
        assert reverse_bits(0, 0) == 0

    def test_palindromes(self):
        assert reverse_bits(0b101, 3) == 0b101
        assert reverse_bits(0b1001, 4) == 0b1001

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_involution(self, v):
        assert reverse_bits(reverse_bits(v, 20), 20) == v

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            reverse_bits(8, 3)
        with pytest.raises(ConfigurationError):
            reverse_bits(-1, 3)
        with pytest.raises(ConfigurationError):
            reverse_bits(0, -1)


class TestTSS:
    def test_paper_small_orders(self):
        assert tss_sequence(0) == [0]
        assert tss_sequence(1) == [0, 1]
        assert tss_sequence(2) == [0, 2, 1, 3]
        assert tss_sequence(3) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_paper_order_4(self):
        # Eq. (14): the leaf-visit order of the RRR walk on Fig. 3.
        assert tss_sequence(4) == [
            0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15,
        ]

    @pytest.mark.parametrize("order", range(0, 11))
    def test_lemma4_closed_form_matches_recursion(self, order):
        assert tss_sequence(order) == tss_sequence_recursive(order)

    @pytest.mark.parametrize("order", range(0, 11))
    def test_is_permutation(self, order):
        seq = tss_sequence(order)
        assert sorted(seq) == list(range(2**order))

    def test_term_bounds(self):
        with pytest.raises(ConfigurationError):
            tss_term(4, 2)
        with pytest.raises(ConfigurationError):
            tss_term(-1, 2)
        with pytest.raises(ConfigurationError):
            tss_term(0, -1)


class TestNodeSlotPositions:
    def test_paper_example_node_2_1(self):
        """Fig. 3: node v(2,1) owns leaves 4..7, which appear at TArray
        positions 2, 6, 10, 14 (stride 2^2, base RB(1,2)=2)."""
        positions = node_slot_positions(2, 1, 4)
        assert positions == [2, 6, 10, 14]
        seq = tss_sequence(4)
        assert [seq[p] for p in positions] == [4, 6, 5, 7]  # leaves of v(2,1)

    def test_root_owns_everything(self):
        assert node_slot_positions(0, 0, 3) == list(range(8))

    def test_leaf_single_position(self):
        # Leaf v(4, 9) appears once, at position RB(9, 4) = 9 reversed.
        positions = node_slot_positions(4, 9, 4)
        assert len(positions) == 1
        assert tss_sequence(4)[positions[0]] == 9

    @given(
        st.integers(min_value=0, max_value=8),
        st.data(),
    )
    @settings(max_examples=60)
    def test_lemma5_even_stride(self, order, data):
        level = data.draw(st.integers(min_value=0, max_value=order))
        index = data.draw(st.integers(min_value=0, max_value=2**level - 1))
        positions = node_slot_positions(level, index, order)
        # Evenly spread with stride 2^level...
        gaps = {b - a for a, b in zip(positions, positions[1:])}
        assert gaps <= {2**level}
        # ...and they are exactly the node's leaves.
        seq = tss_sequence(order)
        owned = set(range(index * 2 ** (order - level),
                          (index + 1) * 2 ** (order - level)))
        assert {seq[p] for p in positions} == owned

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            node_slot_positions(5, 0, 4)
        with pytest.raises(ConfigurationError):
            node_slot_positions(2, 4, 4)


class TestFirstSlotAfter:
    @given(st.data())
    @settings(max_examples=80)
    def test_is_next_comb_position(self, data):
        order = data.draw(st.integers(min_value=1, max_value=8))
        level = data.draw(st.integers(min_value=0, max_value=order))
        index = data.draw(st.integers(min_value=0, max_value=2**level - 1))
        position = data.draw(st.integers(min_value=0, max_value=2**order - 1))
        slot = first_slot_after(position, level, index, order)
        comb = set(node_slot_positions(level, index, order))
        assert slot in comb
        # No comb slot lies in [position, slot) modulo the array size.
        size = 2**order
        cursor = position
        while cursor % size != slot:
            assert cursor % size not in comb or cursor % size == slot
            cursor += 1

    def test_position_validation(self):
        with pytest.raises(ConfigurationError):
            first_slot_after(16, 0, 0, 4)
