"""Tests for the G-3 scheduler (extension).

Anchored on the Section III-C worked example (C = 15, ten flows) and the
structural invariants: TArray/allocator consistency, admission control,
shaping, and the O(1) slot-selection cost that motivated G-3.
"""

import pytest

from repro.core import (
    AdmissionError,
    ConfigurationError,
    InvalidWeightError,
    OpCounter,
    Packet,
)
from repro.extensions import G3Scheduler


def drain_ids(sched, limit=10000):
    out = []
    for _ in range(limit):
        p = sched.dequeue()
        if p is None:
            break
        out.append(p.flow_id)
    return out


def load(sched, flows, n, size=100):
    for fid in flows:
        for i in range(n):
            sched.enqueue(Packet(fid, size, seq=i))


class TestPaperSectionIIIC:
    """C = 15; f0..f6 weight 1, f7,f8 weight 2, f9 weight 4 (f0 here is a
    reserved weight-1 flow exactly as in the example)."""

    def make(self):
        s = G3Scheduler(capacity=15)
        for i in range(7):
            s.add_flow(f"f{i}", 1)
        s.add_flow("f7", 2)
        s.add_flow("f8", 2)
        s.add_flow("f9", 4)
        return s

    def test_tarrays_match_paper(self):
        s = self.make()
        assert s.trees[3].tarray.service_order() == [
            "f7", "f9", "f8", "f9", "f7", "f9", "f8", "f9",
        ]
        assert s.trees[2].tarray.service_order() == ["f3", "f5", "f4", "f6"]
        assert s.trees[1].tarray.service_order() == ["f1", "f2"]
        assert s.trees[0].tarray.service_order() == ["f0"]

    def test_one_round_service_sequence(self):
        s = self.make()
        load(s, [f"f{i}" for i in range(10)], 8)
        got = drain_ids(s, limit=15)
        assert got == [
            "f7", "f3", "f9", "f1", "f8", "f5", "f9", "f0",
            "f7", "f4", "f9", "f2", "f8", "f6", "f9",
        ]

    def test_g3_smoother_than_srr_for_f9(self):
        """The paper's point: f9's inter-service distances are 3,4,4,4
        under G-3 versus 1,3,8,3 under SRR."""
        s = self.make()
        load(s, [f"f{i}" for i in range(10)], 8)
        seq = drain_ids(s, limit=30)
        positions = [i for i, f in enumerate(seq) if f == "f9"]
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert set(gaps) == {3, 4}
        assert max(gaps) == 4  # SRR's worst gap for the same set is 8

    def test_invariants(self):
        s = self.make()
        s.check_invariants()


class TestAdmission:
    def test_full_capacity_admits(self):
        s = G3Scheduler(capacity=15)
        s.add_flow("a", 8)
        s.add_flow("b", 4)
        s.add_flow("c", 2)
        s.add_flow("d", 1)
        assert s.free_slots == 0

    def test_overload_rejected(self):
        s = G3Scheduler(capacity=15)
        s.add_flow("a", 8)
        with pytest.raises(AdmissionError):
            s.add_flow("b", 8)
        assert not s.has_flow("b")
        s.check_invariants()

    def test_structural_rejection_even_with_free_slots(self):
        """C = 15 has no second depth-3 tree: a second weight-8 flow can
        never fit even though 7 slots are free. Inherent to G-3's SWM."""
        s = G3Scheduler(capacity=15)
        s.add_flow("a", 8)
        assert s.free_slots == 7
        with pytest.raises(AdmissionError):
            s.add_flow("b", 8)

    def test_multi_bit_weight_rollback_on_failure(self):
        s = G3Scheduler(capacity=7, auto_shape=False)
        s.add_flow("a", 4)
        s.add_flow("b", 2)
        # 5 = 4 + 1: the 4-part cannot fit; the 1-part must be rolled back.
        with pytest.raises(AdmissionError):
            s.add_flow("c", 5)
        assert s.free_slots == 1
        s.add_flow("d", 1)
        s.check_invariants()

    def test_weight_validation(self):
        s = G3Scheduler(capacity=7)
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", 1.5)
        with pytest.raises(InvalidWeightError):
            s.add_flow("a", -2)

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            G3Scheduler(capacity=0)
        with pytest.raises(ConfigurationError):
            G3Scheduler(capacity="fast")


class TestShaping:
    def test_fragmentation_then_defragment(self):
        """The paper's motivating case: interleaved departures leave only
        scattered unit slots; shaping re-packs them."""
        s = G3Scheduler(capacity=8, auto_shape=False)
        flows = [f"f{i}" for i in range(8)]
        for fid in flows:
            s.add_flow(fid, 1)
        for fid in flows[::2]:  # free the even-numbered unit leaves
            s.remove_flow(fid)
        assert s.free_slots == 4
        with pytest.raises(AdmissionError):
            s.add_flow("big", 4)
        s.defragment()
        s.check_invariants()
        s.add_flow("big", 4)  # now fits
        s.check_invariants()

    def test_auto_shape_retries_transparently(self):
        s = G3Scheduler(capacity=8, auto_shape=True)
        flows = [f"f{i}" for i in range(8)]
        for fid in flows:
            s.add_flow(fid, 1)
        for fid in flows[::2]:
            s.remove_flow(fid)
        s.add_flow("big", 4)  # auto defragment + retry
        assert s.free_slots == 0
        s.check_invariants()

    def test_defragment_preserves_service_shares(self):
        s = G3Scheduler(capacity=8)
        s.add_flow("a", 3)
        s.add_flow("b", 1)
        s.defragment()
        load(s, "ab", 20)
        seq = drain_ids(s, limit=16)
        assert seq.count("a") == 12
        assert seq.count("b") == 4


class TestIncrementalShaping:
    def fragment(self, capacity=8):
        s = G3Scheduler(capacity=capacity, auto_shape=False)
        flows = [f"f{i}" for i in range(capacity)]
        for fid in flows:
            s.add_flow(fid, 1)
        for fid in flows[::2]:
            s.remove_flow(fid)
        return s

    def test_shape_step_merges_one_pair(self):
        s = self.fragment()
        free_before = sum(
            len(t.allocator.free_blocks(0)) for t in s.trees.values()
        )
        assert free_before >= 2
        assert s.shape_step()
        s.check_invariants()
        free_after = sum(
            len(t.allocator.free_blocks(0)) for t in s.trees.values()
        )
        assert free_after == free_before - 2

    def test_shape_reaches_invariant(self):
        s = self.fragment()
        moves = s.shape()
        assert moves >= 1
        s.check_invariants()
        for tree in s.trees.values():
            for e in range(tree.exponent + 1):
                assert len(tree.allocator.free_blocks(e)) <= 1
        # The shaped tree admits the big flow the fragmentation blocked.
        s.add_flow("big", 4)
        s.check_invariants()

    def test_shape_preserves_service_shares(self):
        s = self.fragment()
        s.shape()
        remaining = [f"f{i}" for i in range(1, 8, 2)]
        load(s, remaining, 20)
        seq = drain_ids(s, limit=16)
        for fid in remaining:
            assert seq.count(fid) == 4  # weight 1 of 4 backlogged, 4 rounds

    def test_shape_step_false_when_shaped(self):
        s = G3Scheduler(capacity=15)
        s.add_flow("a", 8)
        assert not s.shape_step()  # one free block per class at most

    def test_cross_tree_shaping(self):
        """C = 12 = 8 + 4: free fragments in both trees must merge via a
        cross-tree move."""
        s = G3Scheduler(capacity=12, auto_shape=False)
        for i in range(12):
            s.add_flow(f"f{i}", 1)
        # Free one leaf in each tree.
        s.remove_flow("f0")
        s.remove_flow("f11")
        assert s.free_slots == 2
        moved = s.shape()
        s.check_invariants()
        assert moved >= 1
        s.add_flow("pair", 2)  # merged block fits a weight-2 flow
        s.check_invariants()


class TestScheduling:
    def test_weight_shares_per_round(self):
        s = G3Scheduler(capacity=15)
        s.add_flow("a", 8)
        s.add_flow("b", 4)
        s.add_flow("c", 2)
        s.add_flow("d", 1)
        load(s, "abcd", 40)
        seq = drain_ids(s, limit=30)
        assert seq.count("a") == 16
        assert seq.count("b") == 8
        assert seq.count("c") == 4
        assert seq.count("d") == 2

    def test_best_effort_gets_idle_and_unbacklogged_slots(self):
        s = G3Scheduler(capacity=15)
        s.add_flow("res", 8)
        s.add_flow("be", 0)
        load(s, ["be"], 10)
        # Reserved flow idle: BE takes every slot.
        assert drain_ids(s) == ["be"] * 10

    def test_reserved_flow_isolated_from_best_effort_flood(self):
        s = G3Scheduler(capacity=15)
        s.add_flow("res", 8)
        s.add_flow("be", 0)
        load(s, ["be"], 100)
        load(s, ["res"], 8)
        seq = drain_ids(s, limit=30)
        # res owns 8 of every 15 slots regardless of the BE flood.
        assert seq[:15].count("res") == 8

    def test_work_conserving_single_reserved_flow(self):
        s = G3Scheduler(capacity=15)
        s.add_flow("only", 1)
        load(s, ["only"], 5)
        assert drain_ids(s) == ["only"] * 5

    def test_slot_selection_cost_constant(self):
        """G-3's raison d'être: slot selection is one WSS step + one
        array read, independent of flows and capacity depth."""

        def cost(capacity, n_flows):
            ops = OpCounter()
            s = G3Scheduler(capacity=capacity, op_counter=ops)
            for i in range(n_flows):
                s.add_flow(i, 1)
                s.enqueue(Packet(i, 100))
            ops.reset()
            served = 0
            while s.dequeue() is not None:
                served += 1
            return ops.count / served

        small = cost(2**6 - 1, 32)
        large = cost(2**12 - 1, 2048)
        assert large <= small * 2.5  # flat, unlike RRR's walk

    def test_remove_flow_slots_become_idle(self):
        s = G3Scheduler(capacity=3)
        s.add_flow("a", 2)
        s.add_flow("b", 1)
        s.remove_flow("a")
        load(s, ["b"], 3)
        assert drain_ids(s) == ["b"] * 3
        s.check_invariants()

    def test_pointer_wraps_consistently(self):
        s = G3Scheduler(capacity=3)
        s.add_flow("a", 2)
        s.add_flow("b", 1)
        load(s, "ab", 50)
        seq = drain_ids(s, limit=45)
        assert seq.count("a") == 30
        assert seq.count("b") == 15
