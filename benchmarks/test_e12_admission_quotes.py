"""E12 — CAC delay quotes per discipline + empirical validation.

The control-plane consequence of the paper's complexity/delay tradeoff:
SRR's N-dependent bound forces enormous worst-case-N quotes; G-3's
Theorem 2 (N-independent) quotes the same reservation an order of
magnitude tighter; WFQ tighter still; FIFO cannot promise anything; and
the SRR quote, however loose, must hold empirically.
"""

from repro.bench import e12_admission_quotes


def test_e12_admission_quotes(run_once):
    result = run_once(e12_admission_quotes)
    srr = result["srr"]["total_ms"]
    g3 = result["g3"]["total_ms"]
    wfq = result["wfq"]["total_ms"]
    # Quote ordering: wfq < g3 << srr (and drr in srr's class).
    assert wfq < g3 < srr / 5
    assert result["drr"]["total_ms"] > g3
    # Guarantee flags.
    for name in ("srr", "drr", "g3", "wfq"):
        assert result[name]["guaranteed"], name
    assert not result["fifo"]["guaranteed"]
    # The SRR quote holds under saturation.
    v = result["validation"]
    assert v["within_quote"]
    assert v["competitors"] > 100  # the path really was saturated
