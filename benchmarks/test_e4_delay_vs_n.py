"""E4 — worst delay vs number of competing flows (Theorem 1's shape).

SRR's tagged-flow delay must grow ~linearly with N and stay within the
Lemma 2 analytic bound (plus the fixed path delay); WFQ's must grow far
slower (its bound is N-independent).
"""

from repro.analysis import wfq_delay_bound
from repro.bench import BOTTLENECK_BPS, MTU, e4_delay_vs_n

N_VALUES = (16, 64, 256)


def test_e4_delay_vs_n(run_once):
    result = run_once(
        e4_delay_vs_n,
        ("srr", "wfq"),
        N_VALUES,
        duration=3.0,
    )
    srr = result["srr"]
    wfq = result["wfq"]
    bound = result["bound_ms"]
    # Linear growth: 16x more flows -> (roughly) 10x worse SRR delay.
    assert srr[256] / srr[16] > 4.0
    # Measured SRR delay within the Lemma 2 bound at every N.
    for n in N_VALUES:
        assert srr[n] <= bound[n] * 1.02
    # WFQ's delay stays under its *N-independent* bound (L/r + L/C plus
    # ~1.7 ms of fixed path delay) at every N — that is the qualitative
    # difference, not the growth rate at small N.
    wfq_flat_ms = (
        wfq_delay_bound(0, 32_000, MTU, BOTTLENECK_BPS) + 0.002
    ) * 1e3
    for n in N_VALUES:
        assert wfq[n] <= wfq_flat_ms
    # SRR's delay crosses WFQ's flat bound once N is large enough
    # (N > C/r): here by N = 256 it is already close; assert ordering.
    assert wfq[256] < srr[256]
