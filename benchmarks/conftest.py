"""Shared helpers for the benchmark suite.

Every file in this directory regenerates one experiment (one table/figure
of EXPERIMENTS.md). Conventions:

* the ``benchmark`` fixture wraps the hot measurement (so
  ``pytest benchmarks/ --benchmark-only`` reports timing), and
* each bench *asserts the shape* of the result — who wins, how quantities
  scale — mirroring the claims of the paper rather than absolute numbers.

Scales are reduced relative to ``python -m repro.bench <id>`` so the whole
suite completes in a few minutes.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark fixture.

    Simulation experiments are far too heavy to iterate hundreds of
    times; ``pedantic`` with one round keeps pytest-benchmark's reporting
    while executing a single run whose result the test then asserts on.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
