"""E6 — weighted fairness in a saturated node (claim C2).

SRR must deliver exactly weight-proportional service per round
(Jain index 1) with a fluid lag comparable to WFQ's and far below
WRR/DRR's burst-induced lag; plain RR must be visibly unfair under
unequal weights.
"""

from repro.bench import e6_fairness


def test_e6_fairness(run_once):
    result = run_once(
        e6_fairness,
        ("srr", "wrr", "drr", "wfq", "rr"),
        n_flows=16,
        rounds=12,
    )
    # Weighted disciplines reach Jain ~= 1 over whole rounds.
    for name in ("srr", "wrr", "drr", "wfq"):
        assert result[name]["jain"] > 0.99, name
    # Unweighted RR cannot.
    assert result["rr"]["jain"] < 0.9
    # The short-term story: SRR's fluid lag is WFQ-like (sub-packet),
    # WRR/DRR lag by whole bursts.
    assert result["srr"]["worst_lag_packets"] < 2.0
    assert result["wfq"]["worst_lag_packets"] < 2.0
    assert result["wrr"]["worst_lag_packets"] > 3 * result["srr"]["worst_lag_packets"]
    assert result["drr"]["worst_lag_packets"] > 3 * result["srr"]["worst_lag_packets"]
