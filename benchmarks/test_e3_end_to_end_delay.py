"""E3 — end-to-end delay in the paper's dumbbell (Fig. 8 workload).

Shape assertions (paper, Section V): under SRR both the 32 kb/s and the
1024 kb/s flow see large worst-case delays of similar magnitude (delay
grows with N for every weight); under WFQ the high-rate flow is protected
(its delay stays near the propagation floor).
"""

from repro.bench import e3_end_to_end_delay

# Reduced scale: 300 background flows, 4 simulated seconds.
N_BACKGROUND = 300
DURATION = 4.0


def test_e3_end_to_end_delay(run_once):
    result = run_once(
        e3_end_to_end_delay,
        ("srr", "drr", "wfq"),
        duration=DURATION,
        n_background=N_BACKGROUND,
    )
    srr, wfq = result["srr"], result["wfq"]
    # Both reserved flows suffer under SRR (delay ∝ N regardless of rate).
    assert srr["f1"]["max_ms"] > 40
    assert srr["f2"]["max_ms"] > 40
    # WFQ keeps the high-rate flow near the 22 ms propagation+store floor.
    assert wfq["f2"]["max_ms"] < 25
    # And WFQ beats SRR for both flows.
    assert wfq["f1"]["max_ms"] < srr["f1"]["max_ms"]
    assert wfq["f2"]["max_ms"] < srr["f2"]["max_ms"]
    # Everybody's packets actually arrived.
    for name in result:
        for fid in ("f1", "f2"):
            assert result[name][fid]["packets"] > 0
