"""E9 — space-time tradeoffs (Section IV-B) and design-choice ablations.

(a) WSS storage: materialised 2^k array vs the fold-onto-2^k' table vs
    the closed form — exactness is tested elsewhere; here the *space*
    ordering is asserted and the lookup costs are reported.
(b) G-3 TArray partial expansion: storage shrinks as fewer levels are
    expanded while per-packet work grows — the tradeoff's two sides.
"""

from repro.bench import e9_space_time


def test_e9_space_time(run_once):
    result = run_once(
        e9_space_time, wss_order=16, stored_order=9, lookups=20000
    )
    wss = result["wss"]
    # Space ordering: closed form stores nothing; folded stores 2^9-1;
    # materialised stores 2^16-1.
    assert wss["closed form (v2+1)"]["entries"] == 0
    assert wss["folded onto 2^9"]["entries"] == 2**9 - 1
    assert wss["materialised 2^k"]["entries"] == 2**16 - 1
    # TArray ablation: less expansion = less storage but slower packets.
    tarray = result["tarray"]
    assert tarray["top 0 levels"]["storage"] < tarray["full"]["storage"]
    assert tarray["top 0 levels"]["us"] > tarray["full"]["us"]


def test_e9_dynamic_order_ablation(run_once):
    """Design-choice ablation: SRR's dynamic order restart still yields
    exact per-round fairness once the weight mix stabilises."""
    from repro.core import Packet, SRRScheduler

    def run():
        sched = SRRScheduler()
        sched.add_flow("heavy", 8)
        sched.add_flow("light", 1)
        for i in range(400):
            sched.enqueue(Packet("heavy", 200, seq=i))
        for i in range(60):
            sched.enqueue(Packet("light", 200, seq=i))
        # Mid-stream arrival of a heavier flow forces an order change.
        served = []
        for _ in range(45):
            served.append(sched.dequeue().flow_id)
        sched.add_flow("huge", 16)
        for i in range(200):
            sched.enqueue(Packet("huge", 200, seq=i))
        for _ in range(100):
            served.append(sched.dequeue().flow_id)
        return served

    served = run_once(lambda: run())
    # After the perturbation, shares settle near 16:8:1 (the 75-slot
    # window is not round-aligned, so allow one round's phase slack).
    tail = served[-75:]  # ~three rounds of 25
    assert abs(tail.count("huge") - 48) <= 6
    assert abs(tail.count("heavy") - 24) <= 4
    assert abs(tail.count("light") - 3) <= 2
