"""E1 — the WSS definition table (orders, counts, spacing).

Regenerates the WSS examples of the paper (Eq. 6-7) and checks the two
structural properties SRR's fairness rests on.
"""

from repro.bench import e1_wss_properties


def test_e1_wss_properties(run_once):
    result = run_once(e1_wss_properties, 14)
    assert result["all_counts_ok"]
    assert result["all_spacing_ok"]
    assert result["wss4"] == [1, 2, 1, 3, 1, 2, 1, 4, 1, 2, 1, 3, 1, 2, 1]


def test_e1_term_generation_speed(benchmark):
    """Raw closed-form term generation throughput (the per-packet step)."""
    from repro.core.wss import WSSCursor

    cursor = WSSCursor(20)

    def spin():
        for _ in range(10000):
            cursor.advance()

    benchmark(spin)
