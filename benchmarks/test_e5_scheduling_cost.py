"""E5 — per-packet scheduling cost vs N: the O(1) claim (C1).

SRR's elementary-operation count per dequeue must stay flat from 16 to
4096 flows while WFQ's grows (heap + GPS tracking) — the paper's central
complexity comparison. A wall-clock benchmark of the SRR hot path rides
along.
"""

from repro.bench import e5_scheduling_cost
from repro.bench.workloads import build_loaded_scheduler

N_VALUES = (16, 256, 4096)


def test_e5_ops_shape(run_once):
    result = run_once(
        e5_scheduling_cost,
        ("srr", "drr", "wfq", "scfq", "g3"),
        N_VALUES,
        measure=2000,
    )
    srr, wfq, scfq, g3 = (
        result["srr"], result["wfq"], result["scfq"], result["g3"],
    )
    # O(1): SRR cost flat within noise across a 256x flow-count range.
    assert srr[4096] <= srr[16] + 2
    # G-3 (slot lookup) flat as well.
    assert g3[4096] <= g3[16] + 2
    # Timestamp schedulers grow: SCFQ ~log N, WFQ worse.
    assert scfq[4096] > scfq[16] * 1.5
    assert wfq[4096] > wfq[16] * 2
    # At scale, SRR is cheaper than both.
    assert srr[4096] < scfq[4096] < wfq[4096]


def test_e5_srr_dequeue_wallclock(benchmark):
    """Wall-clock nanoseconds per SRR dequeue at N = 4096."""
    sched = build_loaded_scheduler(
        "srr", {i: (i % 7) + 1 for i in range(4096)}, packets_per_flow=3
    )

    def spin():
        for _ in range(2000):
            sched.dequeue()

    benchmark(spin)


def test_e5_wfq_dequeue_wallclock(benchmark):
    """Wall-clock comparison point: WFQ dequeue at N = 4096."""
    sched = build_loaded_scheduler(
        "wfq", {i: (i % 7) + 1 for i in range(4096)}, packets_per_flow=3
    )

    def spin():
        for _ in range(2000):
            sched.dequeue()

    benchmark(spin)
