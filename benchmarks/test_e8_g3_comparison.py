"""E8 [ext] — the follow-on text's Fig. 9: G-3 vs SRR vs RRR delays.

Shape assertions from the figure's discussion: G-3's worst delays stay
inside its Theorem 2 bounds; SRR's worst delay is large for BOTH flows
(rate does not help it); RRR is worst for the low-rate flow f1 (its m
grows with the slot grid) while remaining fine for f2.
"""

from repro.bench import e8_g3_comparison

DURATION = 4.0
N_BACKGROUND = 300


def test_e8_g3_comparison(run_once):
    result = run_once(
        e8_g3_comparison,
        ("g3", "srr", "rrr"),
        duration=DURATION,
        n_background=N_BACKGROUND,
    )
    bounds = result["bounds"]
    g3, srr, rrr = result["g3"], result["srr"], result["rrr"]
    # G-3 within its analytic end-to-end bounds.
    assert g3["f1"]["max_ms"] <= bounds["f1"]
    assert g3["f2"]["max_ms"] <= bounds["f2"]
    # G-3 protects the high-rate flow far better than SRR.
    assert g3["f2"]["max_ms"] < srr["f2"]["max_ms"] / 1.5
    # RRR's low-rate flow is the worst of the three (grid-dependent m).
    assert rrr["f1"]["max_ms"] > g3["f1"]["max_ms"]
    # RRR still handles the high-rate flow reasonably (1-2 large bits).
    assert rrr["f2"]["max_ms"] < srr["f2"]["max_ms"]
