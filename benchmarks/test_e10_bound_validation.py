"""E10 — measured worst lag vs analytic bound, every bounded scheduler.

Validates Lemma 2 (SRR), Theorem 2 (G-3) and Eq. 11 (RRR) empirically:
for a sweep of tagged weights among unit-weight competitors, the measured
worst deviation from the ideal rate-r service must stay under the bound.
"""

from repro.bench import e10_bound_validation


def test_e10_bound_validation(run_once):
    result = run_once(e10_bound_validation, n_flows=40, rounds=25)
    for name in ("srr", "g3", "rrr"):
        assert result[name], name
        for case in result[name]:
            assert case["ok"], (name, case)
    # SRR's measured lag grows with the round (N-dependence shows up even
    # in the measurement, not just the bound).
    srr = {c["weight"]: c["measured"] for c in result["srr"]}
    assert max(srr.values()) > 0
