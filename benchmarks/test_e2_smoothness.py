"""E2 — service-order smoothness: SRR vs WRR/DRR/RR (claim C3).

The paper's headline qualitative claim: SRR spreads a flow's services
evenly across the round where WRR/DRR deliver them in bursts. Asserted
via the gap coefficient-of-variation and max inter-service distance of
the heaviest flow, and the max wait of the lightest flow.
"""

from repro.bench import e2_smoothness


def test_e2_smoothness(run_once):
    result = run_once(e2_smoothness, ("srr", "wrr", "drr"), n_flows=12,
                      rounds=8)
    srr, wrr, drr = result["srr"], result["wrr"], result["drr"]
    # SRR's heavy flow is served far more regularly than WRR's.
    assert srr["heavy"]["cv"] < wrr["heavy"]["cv"] / 4
    assert srr["heavy"]["max_gap"] < wrr["heavy"]["max_gap"] / 2
    # Same against DRR (quantum = L -> WRR-like bursts).
    assert srr["heavy"]["cv"] < drr["heavy"]["cv"] / 4
    # The light flow's worst wait is no worse under SRR than under the
    # burst schedulers.
    assert srr["light"]["max_gap"] <= wrr["light"]["max_gap"]
