"""E11 — variable packet sizes ("multi-service" networks).

SRR's base (packet) mode is byte-unfair under bimodal sizes exactly by
the size ratio; the deficit variant restores byte fairness while keeping
WSS spreading; DRR/WFQ are byte-fair by construction.
"""

import pytest

from repro.bench import e11_variable_packet_sizes


def test_e11_variable_packet_sizes(run_once):
    result = run_once(e11_variable_packet_sizes, rounds=250)
    # Packet mode: the large-packet flow gets ~1500/64 the bytes.
    assert result["srr packet"] > 10
    # Deficit mode and the byte-based disciplines: ~1.0.
    assert result["srr deficit"] == pytest.approx(1.0, rel=0.15)
    assert result["drr"] == pytest.approx(1.0, rel=0.15)
    assert result["wfq"] == pytest.approx(1.0, rel=0.15)
