"""E7 — reserved-flow throughput under best-effort overload (claim C5).

Every QoS scheduler must deliver each reserved flow's goodput within a
few percent of its reservation despite the Pareto best-effort overload;
FIFO — no isolation — must visibly hurt at least one reserved flow.
"""

from repro.bench import e7_guarantees

DURATION = 4.0
N_BACKGROUND = 100


def test_e7_guarantees(run_once):
    result = run_once(
        e7_guarantees,
        ("srr", "drr", "wfq", "fifo"),
        duration=DURATION,
        n_background=N_BACKGROUND,
    )
    for name in ("srr", "drr", "wfq"):
        for fid in ("f1", "f2"):
            ratio = (
                result[name][fid]["goodput_bps"]
                / result[name][fid]["reserved_bps"]
            )
            assert 0.9 < ratio < 1.1, (name, fid, ratio)
            # Isolation: reserved flows never queue behind the flood.
            assert result[name][fid]["max_ms"] < 100, (name, fid)
    # FIFO has no isolation: reserved packets sit behind the best-effort
    # backlog and their delay explodes by an order of magnitude.
    assert result["fifo"]["f1"]["max_ms"] > 5 * result["srr"]["f1"]["max_ms"]
