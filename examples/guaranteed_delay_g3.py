#!/usr/bin/env python3
"""Extension: provable end-to-end delay with G-3 + leaky-bucket shaping.

The follow-on work to SRR (the G-3 scheduler, built from SRR's Weight
Spread Sequence plus RRR's binary trees) achieves what SRR alone cannot:
a delay bound independent of the number of flows. Combined with a
``(sigma, rho)`` leaky bucket at the edge, Corollary 1 gives a hard
end-to-end delay bound across a chain of G-3 routers:

    D <= sigma / rho + sum_i d(i)

This example builds a 3-hop chain of G-3 routers, shapes a reserved flow
at the edge, computes the analytic bound, floods the network with
competing traffic, and verifies that every measured packet delay stays
below the bound.

Run:
    python examples/guaranteed_delay_g3.py
"""

import argparse

from repro.analysis import end_to_end_bound, g3_delay_bound, summarize_delays
from repro.net import BurstSource, CBRSource, Network, TokenBucketShaper

LINK_BPS = 10_000_000
CAPACITY_SLOTS = 625          # 16 kb/s units
UNIT_BPS = LINK_BPS / CAPACITY_SLOTS
PACKET = 200


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hops", type=int, default=3)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--weight", type=int, default=4,
                        help="reserved slots (x16 kb/s) for the flow")
    args = parser.parse_args()

    rate = args.weight * UNIT_BPS
    sigma = 3 * PACKET  # allow a 3-packet burst at the edge

    # --- topology: src - R1 - ... - Rn - dst, all G-3 bottlenecks -------
    net = Network(
        default_scheduler="g3",
        default_scheduler_kwargs={"capacity": CAPACITY_SLOTS},
    )
    routers = [f"R{i}" for i in range(1, args.hops + 1)]
    names = ["src"] + routers + ["dst"]
    for name in names:
        net.add_node(name)
    for a, b in zip(names, names[1:]):
        net.add_link(a, b, rate_bps=LINK_BPS, delay=0.001)

    # --- the guaranteed flow, shaped to (sigma, rho) at the edge --------
    net.add_flow("gold", "src", "dst", weight=args.weight)
    shaper = TokenBucketShaper(sigma_bytes=sigma, rate_bps=rate)
    net.attach_source(
        "gold", CBRSource(rate, packet_size=PACKET), shaper=shaper
    )

    # --- competition: reserved cross traffic + best-effort flood --------
    n_cross = (CAPACITY_SLOTS - args.weight) // 2
    for i in range(n_cross):
        fid = f"cross{i}"
        net.add_flow(fid, "src", "dst", weight=1)
        net.attach_source(fid, CBRSource(UNIT_BPS, packet_size=PACKET))
    net.add_flow("flood", "src", "dst", weight=0, max_queue=500)
    net.attach_source("flood", BurstSource(50_000, packet_size=PACKET))

    # --- the analytic promise -------------------------------------------
    per_node = g3_delay_bound(args.weight, CAPACITY_SLOTS, PACKET, LINK_BPS)
    fixed = args.hops * (0.001 + PACKET * 8 / LINK_BPS)  # prop + store
    bound = end_to_end_bound(sigma, rate, [per_node] * args.hops) + fixed

    net.run(until=args.duration)
    delays = net.sinks.delays("gold")
    stats = summarize_delays(delays)

    print(f"flow: {rate / 1e3:.0f} kb/s over {args.hops} G-3 hops, "
          f"shaped to (sigma={sigma}B, rho={rate / 1e3:.0f}kb/s)")
    print(f"competing: {n_cross} reserved cross flows + best-effort flood")
    print(f"\nanalytic end-to-end bound (Cor. 1): {bound * 1e3:8.2f} ms")
    print(f"measured max delay:                 {stats.maximum * 1e3:8.2f} ms")
    print(f"measured mean delay:                {stats.mean * 1e3:8.2f} ms")
    print(f"packets delivered:                  {stats.count:8d}")
    ok = stats.maximum <= bound
    print(f"\nevery packet within the bound: {ok}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
