#!/usr/bin/env python3
"""Admission control and delay quotes: the scheduler's control plane.

The paper assumes flows enter through a call admission controller (CAC).
This example runs that controller over a two-bottleneck path and shows
what each scheduling discipline lets the CAC *promise*:

* under SRR the delay bound depends on how many flows MIGHT be active
  (Lemma 2's N term), so honest quotes must assume the worst-case N —
  they are large;
* under G-3 (the author's follow-on) the bound is N-independent
  (Theorem 2), so the same reservation gets a quote ~25x tighter;
* under WFQ quotes are tight too, but the data plane pays O(log N)+ per
  packet;
* under FIFO no per-flow promise exists at all.

The example then admits flows until the bottleneck refuses, and finally
validates one SRR quote by saturating the network and measuring.

Run:
    python examples/admission_quotes.py
"""

from repro.analysis import format_table
from repro.net import CBRSource, Network, TokenBucketShaper
from repro.qos import AdmissionController

UNIT = 16_000  # 1 weight unit = 16 kb/s


def build(scheduler: str) -> Network:
    kwargs = {"capacity": 625} if scheduler == "g3" else {}
    net = Network(default_scheduler=scheduler, default_scheduler_kwargs=kwargs)
    for n in ("edge", "core1", "core2", "exit"):
        net.add_node(n)
    net.add_link("edge", "core1", rate_bps=100e6, delay=0.001)
    net.add_link("core1", "core2", rate_bps=10e6, delay=0.010)
    net.add_link("core2", "exit", rate_bps=10e6, delay=0.010)
    return net


def quote_comparison() -> None:
    rows = []
    for scheduler in ("srr", "drr", "g3", "wfq", "fifo"):
        unit = 10e6 / 625 if scheduler == "g3" else UNIT
        cac = AdmissionController(build(scheduler), weight_unit_bps=unit)
        res = cac.request(
            "video", "edge", "exit", 1_024_000, sigma_bytes=600
        )
        q = res.quote
        rows.append([
            scheduler,
            round(q.milliseconds(), 2),
            round(sum(q.per_hop) * 1e3, 2),
            round(q.path * 1e3, 2),
            q.guaranteed,
        ])
    print(format_table(
        ["scheduler", "e2e quote ms", "sched part ms", "path ms",
         "guaranteed"],
        rows,
        title="Delay quotes for the same 1024 kb/s reservation "
              "(sigma = 600 B), 2 x 10 Mb/s bottleneck hops",
    ))


def fill_to_rejection() -> None:
    cac = AdmissionController(build("srr"), utilization_limit=0.95)
    admitted = 0
    while True:
        try:
            cac.request(f"flow{admitted}", "edge", "exit", 256_000)
            admitted += 1
        except Exception:
            break
    print(f"\nAdmission fill: {admitted} x 256 kb/s flows admitted "
          f"({admitted * 256_000 / 1e6:.2f} Mb/s of 9.5 Mb/s budget), "
          "next request rejected.")


def validate_one_quote() -> None:
    net = build("srr")
    cac = AdmissionController(net)
    res = cac.request("gold", "edge", "exit", 512_000, sigma_bytes=400)
    shaper = TokenBucketShaper(sigma_bytes=400, rate_bps=512_000)
    net.attach_source(
        "gold", CBRSource(512_000, packet_size=200), shaper=shaper
    )
    competitors = 0
    while True:
        try:
            fid = f"bg{competitors}"
            cac.request(fid, "edge", "exit", 64_000)
            net.attach_source(fid, CBRSource(64_000, packet_size=200))
            competitors += 1
        except Exception:
            break
    net.run(until=5.0)
    delays = net.sinks.delays("gold")
    print(f"\nQuote validation under saturation ({competitors} competitors):")
    print(f"  quoted bound : {res.quote.milliseconds():8.2f} ms")
    print(f"  measured max : {max(delays) * 1e3:8.2f} ms")
    print(f"  within quote : {max(delays) <= res.quote.total}")


if __name__ == "__main__":
    quote_comparison()
    fill_to_rejection()
    validate_one_quote()
