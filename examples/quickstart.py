#!/usr/bin/env python3
"""Quickstart: the SRR scheduler in 60 seconds.

Demonstrates the public API at its two levels:

1. the raw scheduler — register weighted flows, enqueue packets, pull
   them in SRR order, and see the Weight Spread Sequence in action;
2. the network simulator — two hosts behind a shared bottleneck whose
   output port runs SRR.

Run:
    python examples/quickstart.py
"""

from repro import Packet, SRRScheduler, wss_sequence
from repro.net import CBRSource, Network


def scheduler_level() -> None:
    print("=" * 64)
    print("1. The scheduler itself")
    print("=" * 64)

    # Weights are positive integers proportional to reserved rates.
    sched = SRRScheduler()
    sched.add_flow("voice", weight=1)   # e.g. 64 kb/s
    sched.add_flow("video", weight=4)   # e.g. 256 kb/s
    sched.add_flow("bulk", weight=2)    # e.g. 128 kb/s

    # Backlog every flow so the service order shows pure scheduling.
    for flow_id in ("voice", "video", "bulk"):
        for seq in range(8):
            sched.enqueue(Packet(flow_id, size=200, seq=seq))

    # Total weight is 7, so one WSS round serves 7 packets: video 4x,
    # bulk 2x, voice 1x — evenly interleaved, never in bursts.
    order = [sched.dequeue().flow_id for _ in range(14)]
    print(f"\nWSS^3 sequence drives the scan: {wss_sequence(3)}")
    print(f"service order (two rounds):      {order}")
    counts = {f: order.count(f) for f in ("video", "bulk", "voice")}
    print(f"services per two rounds:         {counts}  (= 2 x weight)")


def network_level() -> None:
    print()
    print("=" * 64)
    print("2. The network simulator (ns-2 stand-in)")
    print("=" * 64)

    net = Network(default_scheduler="srr")
    for name in ("alice", "bob", "router", "server"):
        net.add_node(name)
    net.add_link("alice", "router", rate_bps=10e6, delay=0.001)
    net.add_link("bob", "router", rate_bps=10e6, delay=0.001)
    # The shared bottleneck where SRR arbitrates.
    net.add_link("router", "server", rate_bps=1e6, delay=0.005)

    # Alice reserves 3x Bob's share; both want the whole link (900 kb/s
    # each into a 1 Mb/s bottleneck), so the weights decide who gets what.
    net.add_flow("alice-data", "alice", "server", weight=3, max_queue=100)
    net.add_flow("bob-data", "bob", "server", weight=1, max_queue=100)
    net.attach_source("alice-data", CBRSource(900_000, packet_size=500))
    net.attach_source("bob-data", CBRSource(900_000, packet_size=500))

    net.run(until=5.0)

    for fid in ("alice-data", "bob-data"):
        rec = net.sinks.flow(fid)
        print(
            f"\n{fid}: {rec.packets} packets delivered, "
            f"goodput {rec.throughput_bps(1.0, 5.0) / 1e3:.0f} kb/s, "
            f"mean delay {sum(rec.delays()) / rec.packets * 1e3:.2f} ms"
        )
    print("\nAlice's goodput is ~3x Bob's: the 3:1 weights decide the")
    print("split under overload (the excess waits or is dropped at the")
    print("100-packet queue limit), and SRR interleaves their packets")
    print("smoothly instead of in bursts.")


if __name__ == "__main__":
    scheduler_level()
    network_level()
