#!/usr/bin/env python3
"""The O(1) argument for core routers: scheduling cost as flows scale.

The paper's motivation: an OC-768 (40 Gb/s) port transmits a 200 B packet
in 40 ns, and a core router can carry ~10^6 concurrent flows. A
per-packet cost that grows with log N (timestamp schedulers) or N (exact
GPS tracking) cannot keep up; SRR's cost is a small constant.

This example measures elementary operations AND wall-clock time per
dequeue for SRR and the baselines as the flow count grows, then
extrapolates: how many scheduling decisions per second does each
discipline sustain, and what line rate does that support at 200 B
packets?

Run:
    python examples/highspeed_core_router.py
    python examples/highspeed_core_router.py --max-flows 65536
"""

import argparse
import time

from repro.analysis import format_table
from repro.bench import build_loaded_scheduler, ops_per_packet


def wallclock_per_dequeue(name: str, n_flows: int, **kwargs) -> float:
    sched = build_loaded_scheduler(
        name, {i: (i % 7) + 1 for i in range(n_flows)},
        packets_per_flow=3, **kwargs,
    )
    count = min(3000, 3 * n_flows)
    start = time.perf_counter()
    for _ in range(count):
        sched.dequeue()
    return (time.perf_counter() - start) / count


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-flows", type=int, default=16384)
    parser.add_argument(
        "--schedulers", nargs="+",
        default=["srr", "drr", "scfq", "wfq"],
    )
    args = parser.parse_args()

    n_values = []
    n = 16
    while n <= args.max_flows:
        n_values.append(n)
        n *= 8

    rows = []
    for name in args.schedulers:
        for n in n_values:
            mean_ops, worst_ops = ops_per_packet(name, n, measure=3000)
            us = wallclock_per_dequeue(name, n) * 1e6
            rate_gbps = 200 * 8 / (us * 1000)  # 200 B packets
            rows.append([
                name, n, round(mean_ops, 2), worst_ops,
                round(us, 2), round(rate_gbps, 3),
            ])
    print(format_table(
        ["scheduler", "flows", "ops/pkt", "worst ops", "us/pkt",
         "line rate Gb/s*"],
        rows,
        title="Per-packet scheduling cost vs flow count",
    ))
    print(
        "\n* the line rate one CPython interpreter could schedule at 200 B\n"
        "  packets — a toy number (real routers use silicon), but the\n"
        "  SHAPE is the paper's argument: SRR's columns are flat while\n"
        "  the timestamp schedulers' grow with N. In hardware the same\n"
        "  flat-vs-log(N) gap decides feasibility at 40 Gb/s."
    )


if __name__ == "__main__":
    main()
