#!/usr/bin/env python3
"""Why "smoothed" matters: VoIP jitter under SRR vs WRR vs DRR.

The intro's motivating workload: a VoIP flow shares a bottleneck with a
few bulk transfers in a fixed-packet-size network (the paper's model —
every packet is 200 B). All the round-robin schedulers give the voice
flow its reserved throughput, and its *weight* entitles it to several
services per round. The difference is WHERE in the round those services
land:

* WRR and DRR deliver each flow's whole per-round allocation as one
  contiguous burst, so voice packets sit through the bulk flows' bursts;
* SRR spreads the allocation across the round following the Weight
  Spread Sequence, so a weight-w flow is served ~every (round/w) slots.

That difference is directly visible as the voice flow's delay ceiling
and jitter.

Run:
    python examples/voip_smoothness.py
"""

import argparse

from repro.analysis import format_table, jitter, summarize_delays
from repro.net import BurstSource, CBRSource, Network

PACKET = 200          # the paper's fixed packet size
UNIT_BPS = 16_000     # one weight unit
BOTTLENECK = 2e6      # 2 Mb/s access trunk


def build(scheduler: str, n_bulk: int) -> Network:
    net = Network(
        default_scheduler=scheduler,
        # DRR quantum = packet size: the honest fixed-size comparison.
        default_scheduler_kwargs=(
            {"quantum": PACKET} if scheduler == "drr" else {}
        ),
    )
    for name in ("pbx", "fileserver", "router", "office"):
        net.add_node(name)
    net.add_link("pbx", "router", rate_bps=100e6, delay=0.0005)
    net.add_link("fileserver", "router", rate_bps=100e6, delay=0.0005)
    net.add_link("router", "office", rate_bps=BOTTLENECK, delay=0.005)

    # Voice: 64 kb/s = weight 4 -> four evenly spread services per round
    # under SRR, one burst of four under WRR/DRR.
    net.add_flow("voip", "pbx", "office", weight=4)
    net.attach_source("voip", CBRSource(64_000, packet_size=PACKET))
    # Bulk transfers: 400 kb/s reservations (weight 25), permanently
    # backlogged.
    for i in range(n_bulk):
        fid = f"bulk{i}"
        net.add_flow(fid, "fileserver", "office", weight=25)
        net.attach_source(fid, BurstSource(20_000, packet_size=PACKET))
    return net


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bulk", type=int, default=4,
                        help="number of bulk flows (weight 25 each)")
    parser.add_argument("--duration", type=float, default=10.0)
    args = parser.parse_args()

    rows = []
    for name in ("srr", "wrr", "drr", "wfq"):
        net = build(name, args.bulk)
        net.run(until=args.duration)
        delays = net.sinks.delays("voip")
        stats = summarize_delays(delays)
        rows.append([
            name, stats.count,
            round(stats.mean * 1e3, 2),
            round(stats.p99 * 1e3, 2),
            round(stats.maximum * 1e3, 2),
            round(jitter(delays) * 1e3, 3),
        ])
    round_ms = (4 + args.bulk * 25) * PACKET * 8 / BOTTLENECK * 1e3
    print(format_table(
        ["scheduler", "voice pkts", "mean ms", "p99 ms", "max ms",
         "jitter ms"],
        rows,
        title=(
            f"VoIP (64 kb/s, weight 4) among {args.bulk} backlogged bulk "
            f"flows (weight 25) — one round = {round_ms:.0f} ms of slots"
        ),
    ))
    print(
        "\nSRR serves the voice flow ~4 evenly spaced times per round\n"
        "(ceiling ~ round/4); WRR and DRR make it wait out whole bulk\n"
        "bursts (ceiling ~ a full round). WFQ is the timestamp reference."
    )


if __name__ == "__main__":
    main()
