#!/usr/bin/env python3
"""The paper's evaluation scenario: a multi-service network under load.

Rebuilds the dumbbell of the paper's Section V (two 10 Mb/s bottleneck
hops, 500 x 16 kb/s reserved background flows, two Pareto best-effort
sources flooding the residue) and measures the end-to-end delay of the
two tagged reserved flows

    f1 = 32 kb/s CBR   (a voice-like trickle)
    f2 = 1024 kb/s CBR (a video-like stream)

under a choice of schedulers. This is experiment E3 of EXPERIMENTS.md in
narrative form; at full scale (``--background 500 --duration 20``) the
numbers land in the regime the paper reports: SRR's worst delay is large
and N-proportional for BOTH flows, while WFQ keeps the high-rate flow at
the propagation floor.

Run:
    python examples/multiservice_delay.py
    python examples/multiservice_delay.py --schedulers srr wfq --duration 20
"""

import argparse

from repro.analysis import format_table, jitter, summarize_delays
from repro.bench import dumbbell_network


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--schedulers",
        nargs="+",
        default=["srr", "drr", "wrr", "wfq"],
        help="schedulers to compare (registry names)",
    )
    parser.add_argument("--duration", type=float, default=8.0,
                        help="simulated seconds")
    parser.add_argument("--background", type=int, default=500,
                        help="number of 16 kb/s background flows")
    args = parser.parse_args()

    rows = []
    for name in args.schedulers:
        print(f"simulating {name} ({args.duration:.0f}s, "
              f"{args.background} background flows)...")
        net = dumbbell_network(name, n_background=args.background)
        net.run(until=args.duration)
        for fid, label in (("f1", "f1 32kb/s"), ("f2", "f2 1024kb/s")):
            delays = net.sinks.delays(fid)
            stats = summarize_delays(delays)
            rows.append([
                name, label, stats.count,
                round(stats.mean * 1e3, 2),
                round(stats.p99 * 1e3, 2),
                round(stats.maximum * 1e3, 2),
                round(jitter(delays) * 1e3, 3),
            ])
    print(format_table(
        ["scheduler", "flow", "pkts", "mean ms", "p99 ms", "max ms",
         "jitter ms"],
        rows,
        title="\nEnd-to-end delay of the tagged reserved flows",
    ))
    print(
        "\nReading the table: SRR's worst-case delay is proportional to\n"
        "the number of active flows and hits BOTH tagged flows (even the\n"
        "1 Mb/s one); the timestamp scheduler (WFQ) protects the\n"
        "high-rate flow at O(log N)+ cost per packet. That cost/delay\n"
        "tradeoff is the paper's subject."
    )


if __name__ == "__main__":
    main()
