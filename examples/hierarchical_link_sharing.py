#!/usr/bin/env python3
"""Hierarchical link sharing: service classes first, flows second.

Multi-service networks rarely schedule raw flows against each other —
the link is split between *classes* (voice / video / bulk), and flows
compete only inside their class. This example composes the repository's
schedulers into such a hierarchy with the shadow-token construction
(`repro.core.hierarchy`):

* root: SRR sharing a 4 Mb/s trunk 4 : 3 : 1 between voice, video, bulk;
* inside voice and video: SRR over the member flows;
* inside bulk: DRR (byte-fair across mixed packet sizes).

All levels are O(1) per packet — an SRR-over-SRR tree keeps the paper's
complexity story intact while adding CBQ-style link sharing.

Run:
    python examples/hierarchical_link_sharing.py
"""

from repro.analysis import format_table, summarize_delays
from repro.core import SRRScheduler
from repro.core.hierarchy import HierarchicalScheduler
from repro.net import BurstSource, CBRSource, Network
from repro.schedulers import DRRScheduler

TRUNK_BPS = 4e6


def trunk_scheduler(**_kw):
    # The root must be BYTE-fair (packet sizes differ across classes),
    # so it runs SRR's deficit mode; voice packets are uniform, so plain
    # packet-mode SRR is fine inside that class.
    h = HierarchicalScheduler(SRRScheduler(mode="deficit", quantum=1500))
    h.add_class("voice", 4, scheduler=SRRScheduler())
    h.add_class("video", 3, scheduler=SRRScheduler())
    h.add_class("bulk", 1, scheduler=DRRScheduler(quantum=1500))
    return h


def main() -> None:
    net = Network(default_scheduler="fifo")
    # Separate access hosts so the bulk burst cannot head-of-line block
    # voice/video on a shared FIFO access link — isolation is the trunk
    # scheduler's job, and that is what we want to observe.
    for name in ("campus", "serverroom", "trunk", "core"):
        net.add_node(name)
    net.add_link("campus", "trunk", rate_bps=100e6, delay=0.0005)
    net.add_link("serverroom", "trunk", rate_bps=100e6, delay=0.0005)
    net.add_link("trunk", "core", rate_bps=TRUNK_BPS, delay=0.005,
                 scheduler=trunk_scheduler)

    # Voice: 8 calls at 64 kb/s, small packets.
    for i in range(8):
        fid = f"call{i}"
        net.add_flow(fid, "campus", "core", weight=1,
                     flow_kwargs={"class_id": "voice"})
        net.attach_source(fid, CBRSource(64_000, packet_size=160))
    # Video: 3 streams at 450 kb/s (inside the class's 1.5 Mb/s share).
    for i in range(3):
        fid = f"stream{i}"
        net.add_flow(fid, "campus", "core", weight=1,
                     flow_kwargs={"class_id": "video"})
        net.attach_source(fid, CBRSource(450_000, packet_size=1200))
    # Bulk: 4 greedy transfers with mixed packet sizes, from their own
    # host.
    for i in range(4):
        fid = f"bulk{i}"
        net.add_flow(fid, "serverroom", "core", weight=1,
                     flow_kwargs={"class_id": "bulk"})
        net.attach_source(
            fid, BurstSource(8000, packet_size=1500 if i % 2 else 300)
        )

    net.run(until=8.0)

    rows = []
    classes = {
        "voice": [f"call{i}" for i in range(8)],
        "video": [f"stream{i}" for i in range(3)],
        "bulk": [f"bulk{i}" for i in range(4)],
    }
    for cls, fids in classes.items():
        goodput = sum(
            net.sinks.flow(f).throughput_bps(2.0, 8.0) for f in fids
        )
        delays = [d for f in fids for d in net.sinks.delays(f)]
        stats = summarize_delays(delays)
        rows.append([
            cls, len(fids),
            round(goodput / 1e6, 3),
            round(stats.mean * 1e3, 2),
            round(stats.maximum * 1e3, 2),
        ])
    print(format_table(
        ["class", "flows", "goodput Mb/s", "mean ms", "max ms"],
        rows,
        title=(
            "Hierarchical SRR on a 4 Mb/s trunk — classes weighted 4:3:1,"
            " bulk greedy"
        ),
    ))
    print(
        "\nVoice and video take what they need (their demand is below\n"
        "their class share); bulk's greed is confined to its own class's\n"
        "residual slice, and inside bulk DRR keeps the mixed packet\n"
        "sizes byte-fair."
    )


if __name__ == "__main__":
    main()
